// Deterministic fault injection for the simulated interconnect (DESIGN.md
// "Failure model"). A FaultInjector installed on a Network intercepts every
// send and — driven by a seeded RNG and a programmable rule list — drops,
// duplicates, corrupts (payload/meta bit flips) or delays messages (delayed
// delivery slips a message past later sends, producing real reordering on
// the receiving channel), plus scripted link cuts and node isolation for
// partition and crash scenarios. With no injector installed Network::send
// pays one relaxed atomic load; the reliability layer above (req_ids,
// checksums, retransmits, idempotent replay) is what every fault-soak test
// validates against this hostile wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "cluster/message.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace pfm {

/// One programmable fault rule. Default-constructed fields match every
/// message and inject nothing; the first rule matching a message applies.
struct FaultRule {
  int src = -1;                 ///< -1: any source endpoint
  int dst = -1;                 ///< -1: any destination endpoint
  std::optional<MsgKind> kind;  ///< nullopt: any message kind
  double drop = 0.0;            ///< P(message silently lost)
  double duplicate = 0.0;       ///< P(message delivered twice)
  double corrupt = 0.0;         ///< P(one meta/payload bit flipped)
  double delay = 0.0;           ///< P(delivery deferred past later sends)
  int delay_depth = 3;          ///< sends a delayed message slips past
  double delay_model_us = 50.0; ///< modeled extra wire time when delayed
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Called by Network::send once per offered message (kShutdown never
  /// reaches here — control traffic is immune). Returns the messages to
  /// deliver now, in order: matured delayed messages, then the offered
  /// message and/or its duplicate — or neither when dropped/delayed.
  std::vector<Message> process(Message msg);

  /// Scripted partitions: an isolated node loses every message to or from
  /// it (crash simulation: isolate, then stop the server); a cut link loses
  /// messages between the pair in both directions.
  void isolate(int node);
  void restore(int node);
  void cut(int a, int b);
  void heal(int a, int b);
  bool delivers(int src, int dst) const;

  struct Counters {
    std::int64_t dropped = 0;            ///< lost to a probabilistic rule
    std::int64_t duplicated = 0;
    std::int64_t corrupted = 0;          ///< bit flips actually applied
    std::int64_t delayed = 0;
    std::int64_t partition_dropped = 0;  ///< lost to isolate()/cut()
  };
  Counters counters() const;
  void reset_counters();

  /// Messages currently held for delayed delivery.
  std::size_t in_limbo() const;
  /// Modeled extra wire time charged to delayed messages so far.
  double modeled_delay_us() const;

 private:
  const FaultRule* match(const Message& msg) const;
  void flip_random_bit(Message& msg) PFM_REQUIRES(mu_);

  mutable Mutex mu_{"FaultInjector::mu"};
  FaultPlan plan_;  ///< immutable after construction
  Rng rng_ PFM_GUARDED_BY(mu_);
  std::set<int> isolated_ PFM_GUARDED_BY(mu_);
  /// Normalized (min, max) pairs.
  std::set<std::pair<int, int>> cuts_ PFM_GUARDED_BY(mu_);
  struct Delayed {
    Message msg;
    int remaining;  ///< deliveries left to slip past
  };
  std::vector<Delayed> limbo_ PFM_GUARDED_BY(mu_);
  Counters counters_ PFM_GUARDED_BY(mu_);
  double modeled_delay_us_ PFM_GUARDED_BY(mu_) = 0.0;
};

}  // namespace pfm
