#include "cluster/channel.h"

#include "util/lockdep.h"

namespace pfm {

/// Counts the enclosing thread as a waiter while it blocks on a condition
/// variable, and wakes the destructor's drain wait when the last waiter
/// leaves a closed channel. Constructed and destroyed under mu_.
class Channel::WaiterScope {
 public:
  explicit WaiterScope(Channel& ch) PFM_REQUIRES(ch.mu_) : ch_(ch) {
    ++ch_.waiters_;
  }
  ~WaiterScope() PFM_REQUIRES(ch_.mu_) {
    if (--ch_.waiters_ == 0 && ch_.closed_) ch_.no_waiters_.notify_all();
  }
  WaiterScope(const WaiterScope&) = delete;
  WaiterScope& operator=(const WaiterScope&) = delete;

 private:
  Channel& ch_;
};

Channel::Channel(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Channel::~Channel() {
  MutexLock lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
  // Senders and receivers woken by the close still re-lock mu_ and read
  // state inside their wait loop; destroying the synchronization objects
  // under them would be a use-after-free. Wait until they have all left.
  while (waiters_ != 0) no_waiters_.wait(lock);
}

bool Channel::send(Message msg) {
  PFM_LOCKDEP_ASSERT_UNLOCKED("Channel::send");
  MutexLock lock(mu_);
  {
    WaiterScope scope(*this);
    while (!closed_ && queue_.size() >= capacity_) not_full_.wait(lock);
  }
  if (closed_) return false;
  queue_.push_back(std::move(msg));
  not_empty_.notify_one();
  return true;
}

std::optional<Message> Channel::receive() {
  PFM_LOCKDEP_ASSERT_UNLOCKED("Channel::receive");
  MutexLock lock(mu_);
  {
    WaiterScope scope(*this);
    while (!closed_ && queue_.empty()) not_empty_.wait(lock);
  }
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return msg;
}

std::optional<Message> Channel::receive_for(std::chrono::nanoseconds timeout) {
  PFM_LOCKDEP_ASSERT_UNLOCKED("Channel::receive_for");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(mu_);
  {
    WaiterScope scope(*this);
    while (!closed_ && queue_.empty()) {
      if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout)
        break;
    }
  }
  if (queue_.empty()) return std::nullopt;  // timed out, or closed and drained
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return msg;
}

std::optional<Message> Channel::try_receive() {
  MutexLock lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return msg;
}

void Channel::close() {
  MutexLock lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool Channel::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

std::size_t Channel::pending() const {
  MutexLock lock(mu_);
  return queue_.size();
}

}  // namespace pfm
