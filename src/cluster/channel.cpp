#include "cluster/channel.h"

namespace pfm {

Channel::Channel(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

bool Channel::send(Message msg) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
  if (closed_) return false;
  queue_.push_back(std::move(msg));
  not_empty_.notify_one();
  return true;
}

std::optional<Message> Channel::receive() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return msg;
}

std::optional<Message> Channel::try_receive() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return msg;
}

void Channel::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool Channel::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t Channel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace pfm
