#include "cluster/channel.h"

namespace pfm {

/// Counts the enclosing thread as a waiter while it blocks on a condition
/// variable, and wakes the destructor's drain wait when the last waiter
/// leaves a closed channel. Constructed and destroyed under mu_.
class Channel::WaiterScope {
 public:
  explicit WaiterScope(Channel& ch) : ch_(ch) { ++ch_.waiters_; }
  ~WaiterScope() {
    if (--ch_.waiters_ == 0 && ch_.closed_) ch_.no_waiters_.notify_all();
  }
  WaiterScope(const WaiterScope&) = delete;
  WaiterScope& operator=(const WaiterScope&) = delete;

 private:
  Channel& ch_;
};

Channel::Channel(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

Channel::~Channel() {
  std::unique_lock<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
  // Senders and receivers woken by the close still re-lock mu_ and read
  // state inside their predicate; destroying the synchronization objects
  // under them would be a use-after-free. Wait until they have all left.
  no_waiters_.wait(lock, [&] { return waiters_ == 0; });
}

bool Channel::send(Message msg) {
  std::unique_lock<std::mutex> lock(mu_);
  {
    WaiterScope scope(*this);
    not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
  }
  if (closed_) return false;
  queue_.push_back(std::move(msg));
  not_empty_.notify_one();
  return true;
}

std::optional<Message> Channel::receive() {
  std::unique_lock<std::mutex> lock(mu_);
  {
    WaiterScope scope(*this);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  }
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return msg;
}

std::optional<Message> Channel::receive_for(std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  {
    WaiterScope scope(*this);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !queue_.empty(); });
  }
  if (queue_.empty()) return std::nullopt;  // timed out, or closed and drained
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return msg;
}

std::optional<Message> Channel::try_receive() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return msg;
}

void Channel::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool Channel::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t Channel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace pfm
