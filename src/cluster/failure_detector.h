// Heartbeat failure detector (DESIGN.md "Self-healing"). One detector
// thread owns a dedicated Network endpoint and probes a set of monitored
// nodes with kPing at a fixed interval; nodes answer kPong from their
// normal receive loop. Missed pongs accumulate per-node suspicion:
//
//     alive --miss--> suspect --SUSPECT_N misses--> dead
//       ^                |                            |
//       +----- pong -----+---------- pong ------------+
//
// A single pong resets the counter and revives the node, so a flapping
// link produces suspect churn but never a false dead declaration as long
// as any probe in a window of SUSPECT_N gets through. Declarations fire
// the on_dead/on_alive callbacks (repair hooks) from the detector thread,
// outside any detector lock.
//
// mark_dead/mark_alive are explicit overrides for tests and operators: a
// manually-dead node is not probed and never auto-revived until
// mark_alive clears the override.
//
// The detector blocks only through Channel::receive_for with a deadline
// (pfm_lint bare-receive rule): a wedged or dead wire can never wedge the
// detector itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "cluster/network.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pfm {

enum class NodeHealth : std::uint8_t {
  kAlive,    ///< pong seen within the suspicion window
  kSuspect,  ///< >= 1 consecutive probe missed, not yet declared dead
  kDead,     ///< >= suspect_n consecutive probes missed, or mark_dead()
};

const char* to_string(NodeHealth h);

class FailureDetector {
 public:
  struct Options {
    int interval_ms = 20;  ///< probe period
    int timeout_ms = 10;   ///< pong wait per round before counting a miss
    int suspect_n = 3;     ///< consecutive misses before declaring dead

    /// Overrides from PFM_HEARTBEAT_{INTERVAL_MS,TIMEOUT_MS,SUSPECT_N}
    /// applied on top of the given defaults; malformed values are ignored.
    static Options from_env(Options defaults);
    static Options from_env();
  };

  /// Called on declaration edges, from the detector thread (auto) or the
  /// overriding thread (mark_dead/mark_alive), never under a detector lock.
  using Callback = std::function<void(int node)>;

  /// Probes `monitored` endpoints from the dedicated endpoint `self`.
  /// The thread starts immediately; stop() (or destruction) ends it.
  FailureDetector(Network& net, int self, std::vector<int> monitored,
                  Options opts, Callback on_dead = {}, Callback on_alive = {});
  ~FailureDetector();

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  NodeHealth health(int node) const PFM_EXCLUDES(mu_);
  bool is_dead(int node) const { return health(node) == NodeHealth::kDead; }
  std::vector<int> dead_nodes() const PFM_EXCLUDES(mu_);

  /// Manual overrides. mark_dead declares the node dead (firing on_dead if
  /// it was not dead already) and pins it: no probes, no auto-revival.
  /// mark_alive clears any override and suspicion (firing on_alive if the
  /// node was dead) and resumes probing.
  void mark_dead(int node) PFM_EXCLUDES(mu_);
  void mark_alive(int node) PFM_EXCLUDES(mu_);

  /// Elastic membership: starts/stops monitoring a node at runtime. A node
  /// added twice is a no-op; an added node starts alive and is probed from
  /// the next round. Removing drops the node's state entirely without
  /// firing any callback — the caller decided its fate (decommission), so
  /// a dead declaration would be noise.
  void add_monitored(int node) PFM_EXCLUDES(mu_);
  void remove_monitored(int node) PFM_EXCLUDES(mu_);

  struct Counters {
    std::int64_t pings_sent = 0;
    std::int64_t pongs_received = 0;
    std::int64_t suspect_events = 0;     ///< alive -> suspect transitions
    std::int64_t dead_declarations = 0;  ///< auto (probe-driven) only
  };
  Counters counters() const PFM_EXCLUDES(mu_);

  const Options& options() const { return opts_; }

  /// Ends the probe loop and joins the thread; idempotent.
  void stop();

 private:
  struct Peer {
    int node = 0;
    NodeHealth health = NodeHealth::kAlive;
    int misses = 0;        ///< consecutive rounds with no pong
    bool pinned_dead = false;  ///< mark_dead override: skip probing
    std::uint64_t last_pong_seq = 0;
  };

  void run();
  /// Evaluates one probe round after its pong window closed; returns the
  /// nodes newly declared dead / revived so callbacks run outside mu_.
  void evaluate_round(std::uint64_t seq, std::vector<int>& newly_dead,
                      std::vector<int>& newly_alive) PFM_EXCLUDES(mu_);
  /// Drains the inbox until `deadline`, recording pongs. Returns false when
  /// shutdown was requested (kShutdown or closed inbox).
  bool pump_until(std::chrono::steady_clock::time_point deadline)
      PFM_EXCLUDES(mu_);

  Network& net_;
  const int self_;
  const Options opts_;
  Callback on_dead_;
  Callback on_alive_;

  mutable Mutex mu_{"FailureDetector::mu"};
  std::vector<Peer> peers_ PFM_GUARDED_BY(mu_);
  Counters counters_ PFM_GUARDED_BY(mu_);

  std::atomic<bool> stop_sent_{false};
  Mutex stop_mu_{"FailureDetector::stop_mu"};
  std::thread thread_ PFM_GUARDED_BY(stop_mu_);
};

}  // namespace pfm
