#include "cluster/message.h"

#include "util/crc32.h"

namespace pfm {

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::kSetView: return "SET_VIEW";
    case MsgKind::kWrite: return "WRITE";
    case MsgKind::kRead: return "READ";
    case MsgKind::kReadReply: return "READ_REPLY";
    case MsgKind::kAck: return "ACK";
    case MsgKind::kError: return "ERROR";
    case MsgKind::kShutdown: return "SHUTDOWN";
    case MsgKind::kSyncRequest: return "SYNC_REQUEST";
    case MsgKind::kSyncReply: return "SYNC_REPLY";
  }
  return "?";
}

const char* to_string(ErrCode e) {
  switch (e) {
    case ErrCode::kNone: return "NONE";
    case ErrCode::kUnknownView: return "UNKNOWN_VIEW";
    case ErrCode::kUnknownSubfile: return "UNKNOWN_SUBFILE";
    case ErrCode::kBadChecksum: return "BAD_CHECKSUM";
    case ErrCode::kMalformed: return "MALFORMED";
    case ErrCode::kCorruptData: return "CORRUPT_DATA";
    case ErrCode::kIoError: return "IO_ERROR";
  }
  return "?";
}

std::uint32_t message_checksum(const Message& m) {
  std::uint32_t c = crc32(m.meta.data(), m.meta.size());
  return crc32(m.payload.data(), m.payload.size(), c);
}

void stamp_checksum(Message& m) {
  m.checksummed = true;
  m.checksum = message_checksum(m);
}

bool verify_checksum(const Message& m) {
  return !m.checksummed || m.checksum == message_checksum(m);
}

}  // namespace pfm
