#include "cluster/message.h"

#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "util/crc32.h"

namespace pfm {

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::kSetView: return "SET_VIEW";
    case MsgKind::kWrite: return "WRITE";
    case MsgKind::kRead: return "READ";
    case MsgKind::kReadReply: return "READ_REPLY";
    case MsgKind::kAck: return "ACK";
    case MsgKind::kError: return "ERROR";
    case MsgKind::kShutdown: return "SHUTDOWN";
    case MsgKind::kSyncRequest: return "SYNC_REQUEST";
    case MsgKind::kSyncReply: return "SYNC_REPLY";
    case MsgKind::kPing: return "PING";
    case MsgKind::kPong: return "PONG";
  }
  return "?";
}

const char* to_string(ErrCode e) {
  switch (e) {
    case ErrCode::kNone: return "NONE";
    case ErrCode::kUnknownView: return "UNKNOWN_VIEW";
    case ErrCode::kUnknownSubfile: return "UNKNOWN_SUBFILE";
    case ErrCode::kBadChecksum: return "BAD_CHECKSUM";
    case ErrCode::kMalformed: return "MALFORMED";
    case ErrCode::kCorruptData: return "CORRUPT_DATA";
    case ErrCode::kIoError: return "IO_ERROR";
  }
  return "?";
}

std::uint32_t message_checksum(const Message& m) {
  std::uint32_t c = crc32(m.meta.data(), m.meta.size());
  return crc32(m.payload.data(), m.payload.size(), c);
}

void stamp_checksum(Message& m) {
  m.checksummed = true;
  m.checksum = message_checksum(m);
}

bool verify_checksum(const Message& m) {
  return !m.checksummed || m.checksum == message_checksum(m);
}

namespace {

constexpr std::uint32_t kWireMagic = 0x314d4650u;  // "PFM1" little-endian
constexpr std::uint8_t kWireVersion = 1;
constexpr std::uint8_t kFlagContiguous = 0x01;
constexpr std::uint8_t kFlagChecksummed = 0x02;
constexpr std::uint8_t kKnownFlags = kFlagContiguous | kFlagChecksummed;
constexpr std::uint8_t kMaxKind = static_cast<std::uint8_t>(MsgKind::kPong);
constexpr std::uint8_t kMaxErr = static_cast<std::uint8_t>(ErrCode::kIoError);

// Byte-at-a-time little-endian put/get: independent of host endianness and
// alignment, and the only place the wire layout is spelled out twice.
template <typename T>
void put_le(Buffer& out, T value) {
  using U = std::make_unsigned_t<T>;
  U u = static_cast<U>(value);
  for (std::size_t i = 0; i < sizeof(T); ++i)
    out.push_back(static_cast<std::byte>((u >> (8 * i)) & 0xff));
}

template <typename T>
T get_le(std::span<const std::byte> in, std::size_t off) {
  using U = std::make_unsigned_t<T>;
  U u = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    u |= static_cast<U>(std::to_integer<std::uint8_t>(in[off + i])) << (8 * i);
  return static_cast<T>(u);
}

[[noreturn]] void bad_wire(const std::string& what) {
  throw std::invalid_argument("decode_message: " + what);
}

}  // namespace

Buffer encode_message(const Message& m) {
  Buffer out;
  out.reserve(kWireHeaderSize + m.meta.size() + m.payload.size());
  put_le<std::uint32_t>(out, kWireMagic);
  out.push_back(std::byte{kWireVersion});
  out.push_back(static_cast<std::byte>(m.kind));
  std::uint8_t flags = 0;
  if (m.contiguous) flags |= kFlagContiguous;
  if (m.checksummed) flags |= kFlagChecksummed;
  out.push_back(std::byte{flags});
  out.push_back(static_cast<std::byte>(m.err));
  put_le<std::int32_t>(out, m.src_node);
  put_le<std::int32_t>(out, m.dst_node);
  put_le<std::int32_t>(out, m.subfile);
  put_le<std::int64_t>(out, m.view_id);
  put_le<std::int64_t>(out, m.v);
  put_le<std::int64_t>(out, m.w);
  put_le<std::uint64_t>(out, m.req_id);
  put_le<std::uint32_t>(out, m.checksum);
  if (m.meta.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("encode_message: meta too large for the wire");
  put_le<std::uint32_t>(out, static_cast<std::uint32_t>(m.meta.size()));
  put_le<std::uint64_t>(out, static_cast<std::uint64_t>(m.payload.size()));
  const auto* meta_bytes = reinterpret_cast<const std::byte*>(m.meta.data());
  out.insert(out.end(), meta_bytes, meta_bytes + m.meta.size());
  out.insert(out.end(), m.payload.begin(), m.payload.end());
  return out;
}

Message decode_message(std::span<const std::byte> wire) {
  if (wire.size() < kWireHeaderSize) bad_wire("truncated header");
  if (get_le<std::uint32_t>(wire, 0) != kWireMagic) bad_wire("bad magic");
  if (std::to_integer<std::uint8_t>(wire[4]) != kWireVersion)
    bad_wire("unsupported version");
  const std::uint8_t kind = std::to_integer<std::uint8_t>(wire[5]);
  if (kind > kMaxKind) bad_wire("unknown message kind");
  const std::uint8_t flags = std::to_integer<std::uint8_t>(wire[6]);
  if ((flags & ~kKnownFlags) != 0) bad_wire("unknown flag bits");
  const std::uint8_t err = std::to_integer<std::uint8_t>(wire[7]);
  if (err > kMaxErr) bad_wire("unknown error code");

  const auto meta_len = get_le<std::uint32_t>(wire, 56);
  const auto payload_len = get_le<std::uint64_t>(wire, 60);
  // Exact-size check, overflow-proof: lengths are validated against what is
  // actually present before any allocation, so a hostile payload_len of
  // 2^63 rejects instead of trying to allocate.
  const std::uint64_t body = wire.size() - kWireHeaderSize;
  if (meta_len > body) bad_wire("meta length exceeds input");
  if (payload_len != body - meta_len)
    bad_wire("payload length disagrees with input size");

  Message m;
  m.kind = static_cast<MsgKind>(kind);
  m.contiguous = (flags & kFlagContiguous) != 0;
  m.checksummed = (flags & kFlagChecksummed) != 0;
  m.err = static_cast<ErrCode>(err);
  m.src_node = get_le<std::int32_t>(wire, 8);
  m.dst_node = get_le<std::int32_t>(wire, 12);
  m.subfile = get_le<std::int32_t>(wire, 16);
  m.view_id = get_le<std::int64_t>(wire, 20);
  m.v = get_le<std::int64_t>(wire, 28);
  m.w = get_le<std::int64_t>(wire, 36);
  m.req_id = get_le<std::uint64_t>(wire, 44);
  m.checksum = get_le<std::uint32_t>(wire, 52);
  m.meta.assign(reinterpret_cast<const char*>(wire.data()) + kWireHeaderSize,
                meta_len);
  const std::byte* payload = wire.data() + kWireHeaderSize + meta_len;
  m.payload.assign(payload, payload + payload_len);
  return m;
}

}  // namespace pfm
