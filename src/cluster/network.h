// The simulated interconnect: routes messages between node inboxes and
// accounts modeled wire time (substitute for the paper's Myrinet; see
// DESIGN.md). Delivery itself is an in-memory move — the CPU costs the
// paper measures (intersection, mapping, gather/scatter) stay real, while
// per-message latency and bandwidth are charged to a simulated clock that
// benchmarks may report alongside measured time.
//
// A FaultInjector (cluster/fault.h) can be installed to make delivery
// hostile on demand: drops, duplicates, corruption, delayed reordering and
// scripted partitions. With none installed, send() pays one relaxed atomic
// load over the fault-free path. Installing an injector also enables
// per-message checksums (checksums_enabled) so corruption is detectable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/channel.h"
#include "cluster/fault.h"
#include "util/mutex.h"

namespace pfm {

/// Analytic cost model of the wire: time(msg) = latency + bytes/bandwidth.
struct NetParams {
  double latency_us = 10.0;        ///< per-message latency (Myrinet-class)
  double bandwidth_mbps = 100.0;   ///< MB/s payload bandwidth

  double wire_time_us(std::int64_t bytes) const {
    return latency_us + static_cast<double>(bytes) / bandwidth_mbps;
  }
};

class Network {
 public:
  Network(int node_count, NetParams params = {});
  ~Network();

  int node_count() const { return static_cast<int>(inboxes_.size()); }
  const NetParams& params() const { return params_; }

  /// Assigns node endpoints to physical machines (paper section 8.1: the
  /// compute and I/O node sets "may or may not overlap"). Messages between
  /// endpoints on the same machine cost no modeled wire time. By default
  /// every endpoint is its own machine. machine_of.size() must equal
  /// node_count().
  void set_machines(std::vector<int> machine_of);
  int machine_of(int node) const;

  /// Delivers msg to its dst_node inbox; stamps src. Returns false when the
  /// destination inbox is closed. Accumulates modeled wire time. With a
  /// fault injector installed the message may instead be dropped (returns
  /// true — silent loss is the point), duplicated, corrupted or delayed;
  /// kShutdown messages are immune so teardown always completes.
  bool send(int src, Message msg);

  /// The inbox of one node (servers block on it).
  Channel& inbox(int node);

  /// Installs (or replaces) a fault injector; nullptr uninstalls. Not safe
  /// to call concurrently with itself, but safe against in-flight send()s.
  void install_faults(std::shared_ptr<FaultInjector> injector);
  /// The installed injector, or nullptr.
  FaultInjector* faults() const {
    return fault_.load(std::memory_order_acquire);
  }
  /// Force checksums on even without an injector (benchmarks measuring the
  /// checksum overhead in isolation).
  void set_checksums(bool enabled) { explicit_checksums_.store(enabled); }
  /// Senders stamp and receivers verify CRC-32 checksums when true: an
  /// injector is installed or set_checksums(true) was called.
  bool checksums_enabled() const {
    return explicit_checksums_.load(std::memory_order_relaxed) ||
           fault_.load(std::memory_order_acquire) != nullptr;
  }

  /// Total modeled wire time across all messages so far, in microseconds
  /// (includes the modeled penalty of injector-delayed messages).
  double simulated_wire_us() const;
  /// Messages and payload bytes offered to the wire (for the benchmark
  /// reports; fault-injected duplicates and drops do not change the count).
  std::int64_t messages_sent() const { return messages_.load(); }
  std::int64_t bytes_sent() const { return bytes_.load(); }
  void reset_accounting();

  /// Closes every inbox (shutdown).
  void close_all();

 private:
  std::vector<std::unique_ptr<Channel>> inboxes_;
  NetParams params_;
  std::vector<int> machine_of_;
  std::atomic<std::int64_t> messages_{0};
  std::atomic<std::int64_t> bytes_{0};
  std::atomic<std::int64_t> wire_ns_{0};  ///< modeled, in nanoseconds
  /// Ownership, guarded so install_faults can replace the injector while
  /// send()s are in flight: each sender pins its own shared_ptr copy
  /// (copied under fault_mu_, held only for the copy) for the duration of
  /// process(), and the old injector dies only when the last in-flight
  /// sender lets go. `fault_` stays a raw pointer so the fault-free fast
  /// path is still one atomic load, never a lock.
  mutable Mutex fault_mu_{"Network.fault"};
  std::shared_ptr<FaultInjector> fault_owner_ PFM_GUARDED_BY(fault_mu_);
  std::atomic<FaultInjector*> fault_{nullptr};
  std::atomic<bool> explicit_checksums_{false};
};

}  // namespace pfm
