// The simulated interconnect: routes messages between node inboxes and
// accounts modeled wire time (substitute for the paper's Myrinet; see
// DESIGN.md). Delivery itself is an in-memory move — the CPU costs the
// paper measures (intersection, mapping, gather/scatter) stay real, while
// per-message latency and bandwidth are charged to a simulated clock that
// benchmarks may report alongside measured time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/channel.h"

namespace pfm {

/// Analytic cost model of the wire: time(msg) = latency + bytes/bandwidth.
struct NetParams {
  double latency_us = 10.0;        ///< per-message latency (Myrinet-class)
  double bandwidth_mbps = 100.0;   ///< MB/s payload bandwidth

  double wire_time_us(std::int64_t bytes) const {
    return latency_us + static_cast<double>(bytes) / bandwidth_mbps;
  }
};

class Network {
 public:
  Network(int node_count, NetParams params = {});
  ~Network();

  int node_count() const { return static_cast<int>(inboxes_.size()); }
  const NetParams& params() const { return params_; }

  /// Assigns node endpoints to physical machines (paper section 8.1: the
  /// compute and I/O node sets "may or may not overlap"). Messages between
  /// endpoints on the same machine cost no modeled wire time. By default
  /// every endpoint is its own machine. machine_of.size() must equal
  /// node_count().
  void set_machines(std::vector<int> machine_of);
  int machine_of(int node) const;

  /// Delivers msg to its dst_node inbox; stamps src. Returns false when the
  /// destination inbox is closed. Accumulates modeled wire time.
  bool send(int src, Message msg);

  /// The inbox of one node (servers block on it).
  Channel& inbox(int node);

  /// Total modeled wire time across all messages so far, in microseconds.
  double simulated_wire_us() const;
  /// Messages and payload bytes carried (for the benchmark reports).
  std::int64_t messages_sent() const { return messages_.load(); }
  std::int64_t bytes_sent() const { return bytes_.load(); }
  void reset_accounting();

  /// Closes every inbox (shutdown).
  void close_all();

 private:
  std::vector<std::unique_ptr<Channel>> inboxes_;
  NetParams params_;
  std::vector<int> machine_of_;
  std::atomic<std::int64_t> messages_{0};
  std::atomic<std::int64_t> bytes_{0};
  std::atomic<std::int64_t> wire_ns_{0};  ///< modeled, in nanoseconds
};

}  // namespace pfm
