#include "cluster/fault.h"

#include <algorithm>

namespace pfm {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

const FaultRule* FaultInjector::match(const Message& msg) const {
  for (const FaultRule& r : plan_.rules) {
    if (r.src >= 0 && r.src != msg.src_node) continue;
    if (r.dst >= 0 && r.dst != msg.dst_node) continue;
    if (r.kind.has_value() && *r.kind != msg.kind) continue;
    return &r;
  }
  return nullptr;
}

void FaultInjector::flip_random_bit(Message& msg) {
  // Header fields are treated as reliable (the wire model's 64-byte header
  // stands in for a protected transport header); corruption hits the data
  // bytes the checksum covers. A message with neither meta nor payload has
  // nothing to corrupt.
  const std::size_t meta_bits = msg.meta.size() * 8;
  const std::size_t payload_bits = msg.payload.size() * 8;
  const std::size_t total = meta_bits + payload_bits;
  if (total == 0) return;
  const auto bit = static_cast<std::size_t>(
      rng_.uniform(0, static_cast<std::int64_t>(total) - 1));
  if (bit < meta_bits) {
    msg.meta[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(msg.meta[bit / 8]) ^ (1u << (bit % 8)));
  } else {
    const std::size_t b = bit - meta_bits;
    msg.payload[b / 8] ^= static_cast<std::byte>(1u << (b % 8));
  }
  ++counters_.corrupted;
}

std::vector<Message> FaultInjector::process(Message msg) {
  MutexLock lock(mu_);
  std::vector<Message> out;

  // Every offered message ages the limbo queue by one delivery slot;
  // matured messages are delivered ahead of it (they were sent earlier).
  for (auto it = limbo_.begin(); it != limbo_.end();) {
    if (--it->remaining <= 0) {
      out.push_back(std::move(it->msg));
      it = limbo_.erase(it);
    } else {
      ++it;
    }
  }

  const int src = msg.src_node;
  const int dst = msg.dst_node;
  const bool partitioned =
      isolated_.count(src) > 0 || isolated_.count(dst) > 0 ||
      cuts_.count({std::min(src, dst), std::max(src, dst)}) > 0;
  if (partitioned) {
    ++counters_.partition_dropped;
    return out;
  }

  const FaultRule* rule = match(msg);
  if (rule == nullptr) {
    out.push_back(std::move(msg));
    return out;
  }
  if (rule->drop > 0 && rng_.chance(rule->drop)) {
    ++counters_.dropped;
    return out;
  }
  if (rule->corrupt > 0 && rng_.chance(rule->corrupt)) flip_random_bit(msg);
  const bool duplicate = rule->duplicate > 0 && rng_.chance(rule->duplicate);
  if (rule->delay > 0 && rng_.chance(rule->delay)) {
    ++counters_.delayed;
    modeled_delay_us_ += rule->delay_model_us;
    if (duplicate) {
      ++counters_.duplicated;
      out.push_back(msg);  // the duplicate goes through, the original lags
    }
    limbo_.push_back({std::move(msg), std::max(1, rule->delay_depth)});
    return out;
  }
  if (duplicate) {
    ++counters_.duplicated;
    out.push_back(msg);
  }
  out.push_back(std::move(msg));
  return out;
}

void FaultInjector::isolate(int node) {
  MutexLock lock(mu_);
  isolated_.insert(node);
}

void FaultInjector::restore(int node) {
  MutexLock lock(mu_);
  isolated_.erase(node);
}

void FaultInjector::cut(int a, int b) {
  MutexLock lock(mu_);
  cuts_.insert({std::min(a, b), std::max(a, b)});
}

void FaultInjector::heal(int a, int b) {
  MutexLock lock(mu_);
  cuts_.erase({std::min(a, b), std::max(a, b)});
}

bool FaultInjector::delivers(int src, int dst) const {
  MutexLock lock(mu_);
  return isolated_.count(src) == 0 && isolated_.count(dst) == 0 &&
         cuts_.count({std::min(src, dst), std::max(src, dst)}) == 0;
}

FaultInjector::Counters FaultInjector::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

void FaultInjector::reset_counters() {
  MutexLock lock(mu_);
  counters_ = Counters{};
  modeled_delay_us_ = 0.0;
}

std::size_t FaultInjector::in_limbo() const {
  MutexLock lock(mu_);
  return limbo_.size();
}

double FaultInjector::modeled_delay_us() const {
  MutexLock lock(mu_);
  return modeled_delay_us_;
}

}  // namespace pfm
