#include "cluster/node.h"

#include "util/log.h"

namespace pfm {

NodeLoop::NodeLoop(Network& net, int node_id, Handler handler)
    : net_(net), node_id_(node_id), handler_(std::move(handler)) {
  thread_ = std::thread([this] { run(); });
}

NodeLoop::~NodeLoop() { stop(); }

void NodeLoop::run() {
  Channel& inbox = net_.inbox(node_id_);
  while (true) {
    auto msg = inbox.receive();
    if (!msg.has_value()) break;  // inbox closed
    if (msg->kind == MsgKind::kShutdown) break;
    PFM_DEBUG("node ", node_id_, " <- ", to_string(msg->kind), " from ",
              msg->src_node);
    handler_(std::move(*msg));
  }
}

void NodeLoop::stop() {
  // Two threads racing through an unguarded joinable()/join() pair would
  // both pass the check and one would join a thread already being joined.
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (thread_.joinable()) {
    Message bye;
    bye.kind = MsgKind::kShutdown;
    bye.dst_node = node_id_;
    // A closed inbox drops the message, which is fine: the loop is already
    // unblocked (receive returns nullopt) and exits on its own.
    net_.send(node_id_, std::move(bye));
    thread_.join();
  }
}

}  // namespace pfm
