#include "cluster/node.h"

#include "util/log.h"

namespace pfm {

NodeLoop::NodeLoop(Network& net, int node_id, Handler handler)
    : net_(net), node_id_(node_id), handler_(std::move(handler)) {
  thread_ = std::thread([this] { run(); });
}

NodeLoop::~NodeLoop() { stop(); }

void NodeLoop::run() {
  Channel& inbox = net_.inbox(node_id_);
  while (true) {
    auto msg = inbox.receive();
    if (!msg.has_value()) break;  // inbox closed
    if (msg->kind == MsgKind::kShutdown) break;
    PFM_DEBUG("node ", node_id_, " <- ", to_string(msg->kind), " from ",
              msg->src_node);
    handler_(std::move(*msg));
  }
}

void NodeLoop::stop() {
  // The shutdown message is sent BEFORE stop_mu_ is taken: Channel::send
  // blocks when the inbox is full, and a blocking send under a held mutex
  // is both a lockdep violation and a real deadlock when the loop thread —
  // the only consumer of this inbox — is what a stop_mu_ holder would wait
  // on (regression: lockdep_test.cpp, NodeLoopStopHoldsNoLockAcrossSend).
  // The flag keeps the send single-shot, so a second stop() after the join
  // cannot park a stale kShutdown in the inbox for a restarted server.
  if (!stop_sent_.exchange(true, std::memory_order_acq_rel)) {
    Message bye;
    bye.kind = MsgKind::kShutdown;
    bye.dst_node = node_id_;
    // A closed inbox drops the message, which is fine: the loop is already
    // unblocked (receive returns nullopt) and exits on its own.
    net_.send(node_id_, std::move(bye));
  }
  // Two threads racing through an unguarded joinable()/join() pair would
  // both pass the check and one would join a thread already being joined.
  MutexLock lock(stop_mu_);
  if (thread_.joinable()) thread_.join();
}

}  // namespace pfm
