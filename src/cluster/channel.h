// Bounded MPSC channel: the in-memory interconnect of the simulated cluster.
// One channel is one node's inbox; senders block when the channel is full
// (back-pressure stands in for finite network buffers).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "cluster/message.h"

namespace pfm {

class Channel {
 public:
  explicit Channel(std::size_t capacity = 1024);

  /// Blocks while the channel is full. Returns false if the channel was
  /// closed (message dropped).
  bool send(Message msg);

  /// Blocks until a message arrives or the channel is closed and drained;
  /// nullopt on closed-and-empty.
  std::optional<Message> receive();

  /// Non-blocking receive; nullopt when empty (even if open).
  std::optional<Message> try_receive();

  /// Unblocks all senders and receivers; subsequent sends are dropped.
  void close();

  bool closed() const;
  std::size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Message> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace pfm
