// Bounded MPSC channel: the in-memory interconnect of the simulated cluster.
// One channel is one node's inbox; senders block when the channel is full
// (back-pressure stands in for finite network buffers).
//
// Locking: every member is guarded by mu_ (pfm::Mutex, so the guards are
// compiler-enforced under -Wthread-safety and ordered by lockdep). The
// blocking entry points assert via lockdep that the calling thread holds no
// pfm::Mutex — a thread that blocks on a full/empty channel while holding a
// lock stalls every thread needing that lock for an unbounded time, and
// deadlocks outright when the lock-holder is what drains the channel.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>

#include "cluster/message.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pfm {

class Channel {
 public:
  explicit Channel(std::size_t capacity = 1024);

  /// Closes the channel and waits for every thread blocked in send/receive
  /// to leave before the mutex and queue are destroyed. Without this drain a
  /// sender blocked on a full channel races the owner's teardown: close()
  /// wakes it, but it still touches the condition variable and mutex on its
  /// way out (the destructor-vs-in-flight-send race TSan flags).
  ~Channel();

  /// Blocks while the channel is full. Returns false if the channel was
  /// closed (message dropped). Must be called with no pfm::Mutex held.
  bool send(Message msg) PFM_EXCLUDES(mu_);

  /// Blocks until a message arrives or the channel is closed and drained;
  /// nullopt on closed-and-empty. Must be called with no pfm::Mutex held.
  std::optional<Message> receive() PFM_EXCLUDES(mu_);

  /// receive() with a deadline: nullopt when `timeout` elapses with the
  /// channel still empty, or when it is closed and drained (callers that
  /// need to distinguish the two check closed()). The reliable Clusterfile
  /// request layer blocks here instead of in receive(), so a lost reply
  /// surfaces as a timeout to retry rather than a hang.
  std::optional<Message> receive_for(std::chrono::nanoseconds timeout)
      PFM_EXCLUDES(mu_);

  /// Non-blocking receive; nullopt when empty (even if open).
  std::optional<Message> try_receive() PFM_EXCLUDES(mu_);

  /// Unblocks all senders and receivers; subsequent sends are dropped.
  void close() PFM_EXCLUDES(mu_);

  bool closed() const PFM_EXCLUDES(mu_);
  std::size_t pending() const PFM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{"Channel::mu"};
  CondVar not_full_;
  CondVar not_empty_;
  CondVar no_waiters_;  ///< signals waiters_ reaching 0
  std::deque<Message> queue_ PFM_GUARDED_BY(mu_);
  std::size_t capacity_;
  std::size_t waiters_ PFM_GUARDED_BY(mu_) = 0;  ///< blocked in send/receive
  bool closed_ PFM_GUARDED_BY(mu_) = false;

  /// RAII waiter count, held across a condition wait.
  class WaiterScope;
};

}  // namespace pfm
