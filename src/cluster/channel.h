// Bounded MPSC channel: the in-memory interconnect of the simulated cluster.
// One channel is one node's inbox; senders block when the channel is full
// (back-pressure stands in for finite network buffers).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "cluster/message.h"

namespace pfm {

class Channel {
 public:
  explicit Channel(std::size_t capacity = 1024);

  /// Closes the channel and waits for every thread blocked in send/receive
  /// to leave before the mutex and queue are destroyed. Without this drain a
  /// sender blocked on a full channel races the owner's teardown: close()
  /// wakes it, but it still touches the condition variable and mutex on its
  /// way out (the destructor-vs-in-flight-send race TSan flags).
  ~Channel();

  /// Blocks while the channel is full. Returns false if the channel was
  /// closed (message dropped).
  bool send(Message msg);

  /// Blocks until a message arrives or the channel is closed and drained;
  /// nullopt on closed-and-empty.
  std::optional<Message> receive();

  /// receive() with a deadline: nullopt when `timeout` elapses with the
  /// channel still empty, or when it is closed and drained (callers that
  /// need to distinguish the two check closed()). The reliable Clusterfile
  /// request layer blocks here instead of in receive(), so a lost reply
  /// surfaces as a timeout to retry rather than a hang.
  std::optional<Message> receive_for(std::chrono::nanoseconds timeout);

  /// Non-blocking receive; nullopt when empty (even if open).
  std::optional<Message> try_receive();

  /// Unblocks all senders and receivers; subsequent sends are dropped.
  void close();

  bool closed() const;
  std::size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::condition_variable no_waiters_;  ///< signals waiters_ reaching 0
  std::deque<Message> queue_;
  std::size_t capacity_;
  std::size_t waiters_ = 0;  ///< threads blocked in send/receive
  bool closed_ = false;

  /// RAII waiter count, held across a condition wait.
  class WaiterScope;
};

}  // namespace pfm
