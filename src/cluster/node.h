// Node: a thread bound to one inbox of the simulated cluster. Servers
// subclass/compose this to run a receive loop; the Clusterfile I/O server
// is the one user in this repository.
#pragma once

#include <atomic>
#include <functional>
#include <thread>

#include "cluster/network.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pfm {

/// Runs `handler` for every message delivered to `node_id`'s inbox on a
/// dedicated thread until a kShutdown message arrives or the inbox closes.
class NodeLoop {
 public:
  using Handler = std::function<void(Message&&)>;

  NodeLoop(Network& net, int node_id, Handler handler);
  ~NodeLoop();

  NodeLoop(const NodeLoop&) = delete;
  NodeLoop& operator=(const NodeLoop&) = delete;

  int node_id() const { return node_id_; }

  /// Sends a shutdown message to the loop and joins the thread; safe to call
  /// more than once and from concurrent threads (joining is serialized).
  void stop() PFM_EXCLUDES(stop_mu_);

 private:
  void run();

  Network& net_;
  int node_id_;
  Handler handler_;
  /// Ensures exactly one stop() call sends the shutdown message, so a later
  /// restart over the same inbox never finds a stale kShutdown queued.
  std::atomic<bool> stop_sent_{false};
  Mutex stop_mu_{"NodeLoop::stop_mu"};  ///< serializes joinable-check + join
  std::thread thread_ PFM_GUARDED_BY(stop_mu_);
};

}  // namespace pfm
