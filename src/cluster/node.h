// Node: a thread bound to one inbox of the simulated cluster. Servers
// subclass/compose this to run a receive loop; the Clusterfile I/O server
// is the one user in this repository.
#pragma once

#include <functional>
#include <mutex>
#include <thread>

#include "cluster/network.h"

namespace pfm {

/// Runs `handler` for every message delivered to `node_id`'s inbox on a
/// dedicated thread until a kShutdown message arrives or the inbox closes.
class NodeLoop {
 public:
  using Handler = std::function<void(Message&&)>;

  NodeLoop(Network& net, int node_id, Handler handler);
  ~NodeLoop();

  NodeLoop(const NodeLoop&) = delete;
  NodeLoop& operator=(const NodeLoop&) = delete;

  int node_id() const { return node_id_; }

  /// Sends a shutdown message to the loop and joins the thread; safe to call
  /// more than once and from concurrent threads (joining is serialized).
  void stop();

 private:
  void run();

  Network& net_;
  int node_id_;
  Handler handler_;
  std::mutex stop_mu_;  ///< serializes joinable-check + join in stop()
  std::thread thread_;
};

}  // namespace pfm
