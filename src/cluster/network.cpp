#include "cluster/network.h"

#include <stdexcept>

namespace pfm {

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::kSetView: return "SET_VIEW";
    case MsgKind::kWrite: return "WRITE";
    case MsgKind::kRead: return "READ";
    case MsgKind::kReadReply: return "READ_REPLY";
    case MsgKind::kAck: return "ACK";
    case MsgKind::kError: return "ERROR";
    case MsgKind::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

Network::Network(int node_count, NetParams params) : params_(params) {
  if (node_count < 1) throw std::invalid_argument("Network: node_count < 1");
  inboxes_.reserve(static_cast<std::size_t>(node_count));
  machine_of_.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    inboxes_.push_back(std::make_unique<Channel>());
    machine_of_.push_back(i);  // one machine per endpoint by default
  }
}

void Network::set_machines(std::vector<int> machine_of) {
  if (machine_of.size() != inboxes_.size())
    throw std::invalid_argument("Network::set_machines: size mismatch");
  machine_of_ = std::move(machine_of);
}

int Network::machine_of(int node) const {
  if (node < 0 || node >= node_count())
    throw std::out_of_range("Network::machine_of: bad node");
  return machine_of_[static_cast<std::size_t>(node)];
}

Network::~Network() { close_all(); }

bool Network::send(int src, Message msg) {
  if (msg.dst_node < 0 || msg.dst_node >= node_count())
    throw std::out_of_range("Network::send: bad destination node");
  msg.src_node = src;
  const std::int64_t wire = msg.wire_bytes();
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(wire, std::memory_order_relaxed);
  // Co-located endpoints (overlapping compute/I/O node sets) exchange data
  // through memory: no modeled wire time.
  const bool local = src >= 0 && src < node_count() &&
                     machine_of_[static_cast<std::size_t>(src)] ==
                         machine_of_[static_cast<std::size_t>(msg.dst_node)];
  if (!local)
    wire_ns_.fetch_add(
        static_cast<std::int64_t>(params_.wire_time_us(wire) * 1000.0),
        std::memory_order_relaxed);
  return inboxes_[static_cast<std::size_t>(msg.dst_node)]->send(std::move(msg));
}

Channel& Network::inbox(int node) {
  if (node < 0 || node >= node_count())
    throw std::out_of_range("Network::inbox: bad node");
  return *inboxes_[static_cast<std::size_t>(node)];
}

double Network::simulated_wire_us() const {
  return static_cast<double>(wire_ns_.load()) / 1000.0;
}

void Network::reset_accounting() {
  messages_.store(0);
  bytes_.store(0);
  wire_ns_.store(0);
}

void Network::close_all() {
  for (auto& ch : inboxes_) ch->close();
}

}  // namespace pfm
