#include "cluster/network.h"

#include <stdexcept>
#include <utility>

namespace pfm {

Network::Network(int node_count, NetParams params) : params_(params) {
  if (node_count < 1) throw std::invalid_argument("Network: node_count < 1");
  inboxes_.reserve(static_cast<std::size_t>(node_count));
  machine_of_.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    inboxes_.push_back(std::make_unique<Channel>());
    machine_of_.push_back(i);  // one machine per endpoint by default
  }
}

void Network::set_machines(std::vector<int> machine_of) {
  if (machine_of.size() != inboxes_.size())
    throw std::invalid_argument("Network::set_machines: size mismatch");
  machine_of_ = std::move(machine_of);
}

int Network::machine_of(int node) const {
  if (node < 0 || node >= node_count())
    throw std::out_of_range("Network::machine_of: bad node");
  return machine_of_[static_cast<std::size_t>(node)];
}

Network::~Network() { close_all(); }

void Network::install_faults(std::shared_ptr<FaultInjector> injector) {
  // Unpublish the fast-path pointer, swap ownership, then republish. A
  // send() racing the swap either takes the fault-free path or pins its
  // own shared_ptr copy of one of the two injectors — the replaced one is
  // destroyed only after the last in-flight process() releases its pin.
  fault_.store(nullptr, std::memory_order_release);
  FaultInjector* raw = injector.get();
  std::shared_ptr<FaultInjector> old;
  {
    MutexLock lock(fault_mu_);
    old = std::exchange(fault_owner_, std::move(injector));
  }
  fault_.store(raw, std::memory_order_release);
  // `old` (the replaced injector, possibly still pinned by in-flight sends)
  // drops its reference here, outside the lock.
}

bool Network::send(int src, Message msg) {
  if (msg.dst_node < 0 || msg.dst_node >= node_count())
    throw std::out_of_range("Network::send: bad destination node");
  msg.src_node = src;
  const std::int64_t wire = msg.wire_bytes();
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(wire, std::memory_order_relaxed);
  // Co-located endpoints (overlapping compute/I/O node sets) exchange data
  // through memory: no modeled wire time.
  const bool local = src >= 0 && src < node_count() &&
                     machine_of_[static_cast<std::size_t>(src)] ==
                         machine_of_[static_cast<std::size_t>(msg.dst_node)];
  if (!local)
    wire_ns_.fetch_add(
        static_cast<std::int64_t>(params_.wire_time_us(wire) * 1000.0),
        std::memory_order_relaxed);

  if (fault_.load(std::memory_order_acquire) != nullptr &&
      msg.kind != MsgKind::kShutdown) {
    // Pin the injector across process(): install_faults may swap the owner
    // mid-send, and the pin keeps this copy alive until we are done.
    std::shared_ptr<FaultInjector> inj;
    {
      MutexLock lock(fault_mu_);
      inj = fault_owner_;
    }
    if (inj != nullptr) {
      const int dst = msg.dst_node;
      std::vector<Message> deliver = inj->process(std::move(msg));
      bool ok = true;
      for (Message& m : deliver) {
        const int d = m.dst_node;
        const bool sent =
            inboxes_[static_cast<std::size_t>(d)]->send(std::move(m));
        // Only the offered message's fate is reported; matured delayed
        // messages for closed inboxes are simply lost (the node is gone).
        if (d == dst) ok = ok && sent;
      }
      return ok;
    }
  }
  return inboxes_[static_cast<std::size_t>(msg.dst_node)]->send(std::move(msg));
}

Channel& Network::inbox(int node) {
  if (node < 0 || node >= node_count())
    throw std::out_of_range("Network::inbox: bad node");
  return *inboxes_[static_cast<std::size_t>(node)];
}

double Network::simulated_wire_us() const {
  double us = static_cast<double>(wire_ns_.load()) / 1000.0;
  std::shared_ptr<FaultInjector> inj;
  {
    MutexLock lock(fault_mu_);
    inj = fault_owner_;
  }
  if (inj != nullptr) us += inj->modeled_delay_us();
  return us;
}

void Network::reset_accounting() {
  messages_.store(0);
  bytes_.store(0);
  wire_ns_.store(0);
  std::shared_ptr<FaultInjector> inj;
  {
    MutexLock lock(fault_mu_);
    inj = fault_owner_;
  }
  if (inj != nullptr) inj->reset_counters();
}

void Network::close_all() {
  for (auto& ch : inboxes_) ch->close();
}

}  // namespace pfm
