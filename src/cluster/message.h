// Message types for the simulated cluster. The Clusterfile protocol (paper
// section 8) runs between compute-node clients and I/O-node servers over
// these messages; the payload carries serialized FALLS sets or raw data.
//
// Reliability fields (DESIGN.md "Failure model"): every client request
// carries a globally unique req_id that replies echo, so clients match
// replies instead of trusting arrival order, servers deduplicate
// retransmits by (client, req_id), and stale or duplicated replies are
// discarded instead of crashing the await loop. When the network has
// checksums enabled (any installed fault plan enables them), meta and
// payload are covered by a CRC-32 so injected bit flips are detected at the
// receiver rather than silently scattered into subfiles.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/buffer.h"

namespace pfm {

enum class MsgKind : std::uint8_t {
  kSetView,      ///< client -> server: install PROJ_S^{V∩S} for a view
  kWrite,        ///< client -> server: write [vS, wS] of the subfile
  kRead,         ///< client -> server: read [vS, wS] of the subfile
  kReadReply,    ///< server -> client: data for a read
  kAck,          ///< server -> client: write/view acknowledgment
  kError,        ///< server -> client: request failed; meta holds the reason
  kShutdown,     ///< stop the server loop (immune to fault injection)
  kSyncRequest,  ///< server -> server: restarted or migrating replica asks a
                 ///< peer for the write ranges it missed; v carries the
                 ///< requester's epoch, w a chunk byte limit (0: unlimited),
                 ///< view_id a full-transfer resume offset
  kSyncReply,    ///< server -> server: missed ranges (meta "off:len;..." +
                 ///< concatenated payload); v carries the peer's — possibly
                 ///< partial — epoch, w a mode code (delta/full x
                 ///< complete/partial), view_id the next resume offset when
                 ///< a full transfer was chunk-limited
  kPing,         ///< detector -> server: liveness probe; v carries a probe
                 ///< sequence number the pong echoes
  kPong,         ///< server -> detector: liveness answer
};

const char* to_string(MsgKind k);

/// Structured reason on a kError reply: the client's reliable request layer
/// dispatches on the code (re-install the view, resend the request, or give
/// up) instead of parsing the human-readable meta string.
enum class ErrCode : std::uint8_t {
  kNone = 0,
  kUnknownView,     ///< access for a (client, view) with no registered
                    ///< projection — recoverable: re-install and resend
  kUnknownSubfile,  ///< request routed to a node not serving that subfile
  kBadChecksum,     ///< request arrived corrupted — recoverable: resend
  kMalformed,       ///< request failed validation; not retryable
  kCorruptData,     ///< at-rest data failed its block checksum — terminal for
                    ///< this replica: re-reading cannot fix persistent rot,
                    ///< so the client fails over instead of resending
  kIoError,         ///< storage returned EIO — recoverable: resend (errors
                    ///< are never reply-cached, so the retry re-executes)
};

const char* to_string(ErrCode e);

/// Server-side protocol failure that should travel back to the client as a
/// kError reply with a structured code (IoServer catches these per request).
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ErrCode code() const { return code_; }

 private:
  ErrCode code_;
};

struct Message {
  MsgKind kind = MsgKind::kAck;
  int src_node = -1;
  int dst_node = -1;
  int subfile = 0;            ///< which subfile on the I/O node (demux key)
  std::int64_t view_id = 0;   ///< which client view the request refers to
  std::int64_t v = 0;         ///< interval lower limit (subfile space)
  std::int64_t w = 0;         ///< interval upper limit (subfile space)
  bool contiguous = false;    ///< write fast path: payload maps contiguously
  std::string meta;           ///< serialized FALLS for kSetView
  Buffer payload;             ///< data bytes for kWrite / kReadReply

  /// Request id, unique across the process; replies echo it. 0 means "no
  /// reliability protocol" (raw test traffic) — servers skip dedup for it.
  std::uint64_t req_id = 0;
  /// CRC-32 over meta then payload; valid only when `checksummed` is set.
  std::uint32_t checksum = 0;
  bool checksummed = false;
  ErrCode err = ErrCode::kNone;  ///< reason on kError replies

  /// Bytes this message occupies on the simulated wire (header + meta +
  /// payload), used by the network cost model.
  std::int64_t wire_bytes() const {
    return 64 + static_cast<std::int64_t>(meta.size() + payload.size());
  }
};

/// CRC-32 over the message's meta and payload bytes.
std::uint32_t message_checksum(const Message& m);
/// Computes and stores the checksum, marking the message checksummed.
void stamp_checksum(Message& m);
/// True when the message is not checksummed or its checksum matches.
bool verify_checksum(const Message& m);

// ---------------------------------------------------------------------------
// Wire format (ROADMAP item 4 groundwork: a real transport needs bytes, the
// in-process Channel does not). Little-endian, fixed 68-byte header followed
// by meta then payload:
//
//   offset  size  field
//        0     4  magic "PFM1" (0x31 0x4d 0x46 0x50 as a LE u32)
//        4     1  version (1)
//        5     1  kind        (validated against MsgKind)
//        6     1  flags       bit0 contiguous, bit1 checksummed; other bits
//                             must be zero
//        7     1  err         (validated against ErrCode)
//        8     4  src_node    (i32)
//       12     4  dst_node    (i32)
//       16     4  subfile     (i32)
//       20     8  view_id     (i64)
//       28     8  v           (i64)
//       36     8  w           (i64)
//       44     8  req_id      (u64)
//       52     4  checksum    (u32; meaningful only with the checksummed flag)
//       56     4  meta_len    (u32)
//       60     8  payload_len (u64)
//       68     meta_len bytes of meta, then payload_len bytes of payload
//
// decode_message is strict: it throws std::invalid_argument — never any
// other exception type — on short input, bad magic/version, unknown kind,
// err or flag bits, or when meta_len/payload_len disagree with the actual
// input size (both truncated and trailing bytes are rejected). It does NOT
// verify the content checksum: transports call verify_checksum separately so
// corruption is counted and answered (kBadChecksum) rather than treated as a
// framing error.

/// Fixed header size of the byte encoding.
inline constexpr std::size_t kWireHeaderSize = 68;

/// Serializes a message to its byte encoding.
Buffer encode_message(const Message& m);
/// Parses a byte encoding produced by encode_message (or by a peer
/// implementation). Throws std::invalid_argument on any malformed input.
Message decode_message(std::span<const std::byte> wire);

}  // namespace pfm
