// Message types for the simulated cluster. The Clusterfile protocol (paper
// section 8) runs between compute-node clients and I/O-node servers over
// these messages; the payload carries serialized FALLS sets or raw data.
#pragma once

#include <cstdint>
#include <string>

#include "util/buffer.h"

namespace pfm {

enum class MsgKind : std::uint8_t {
  kSetView,      ///< client -> server: install PROJ_S^{V∩S} for a view
  kWrite,        ///< client -> server: write [vS, wS] of the subfile
  kRead,         ///< client -> server: read [vS, wS] of the subfile
  kReadReply,    ///< server -> client: data for a read
  kAck,          ///< server -> client: write/view acknowledgment
  kError,        ///< server -> client: request failed; meta holds the reason
  kShutdown,     ///< stop the server loop
};

const char* to_string(MsgKind k);

struct Message {
  MsgKind kind = MsgKind::kAck;
  int src_node = -1;
  int dst_node = -1;
  int subfile = 0;            ///< which subfile on the I/O node (demux key)
  std::int64_t view_id = 0;   ///< which client view the request refers to
  std::int64_t v = 0;         ///< interval lower limit (subfile space)
  std::int64_t w = 0;         ///< interval upper limit (subfile space)
  bool contiguous = false;    ///< write fast path: payload maps contiguously
  std::string meta;           ///< serialized FALLS for kSetView
  Buffer payload;             ///< data bytes for kWrite / kReadReply

  /// Bytes this message occupies on the simulated wire (header + meta +
  /// payload), used by the network cost model.
  std::int64_t wire_bytes() const {
    return 64 + static_cast<std::int64_t>(meta.size() + payload.size());
  }
};

}  // namespace pfm
