#include "cluster/failure_detector.h"

#include <chrono>
#include <cstdlib>
#include <string>

#include "util/arith.h"
#include "util/log.h"

namespace pfm {

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  try {
    const std::int64_t n = parse_i64(v);
    if (n < 1 || n > 1'000'000) return fallback;
    return static_cast<int>(n);
  } catch (const std::invalid_argument&) {
    return fallback;
  }
}

}  // namespace

const char* to_string(NodeHealth h) {
  switch (h) {
    case NodeHealth::kAlive: return "ALIVE";
    case NodeHealth::kSuspect: return "SUSPECT";
    case NodeHealth::kDead: return "DEAD";
  }
  return "?";
}

FailureDetector::Options FailureDetector::Options::from_env() {
  return from_env(Options{});
}

FailureDetector::Options FailureDetector::Options::from_env(Options defaults) {
  Options o = defaults;
  o.interval_ms = env_int("PFM_HEARTBEAT_INTERVAL_MS", o.interval_ms);
  o.timeout_ms = env_int("PFM_HEARTBEAT_TIMEOUT_MS", o.timeout_ms);
  o.suspect_n = env_int("PFM_HEARTBEAT_SUSPECT_N", o.suspect_n);
  if (o.timeout_ms > o.interval_ms) o.timeout_ms = o.interval_ms;
  return o;
}

FailureDetector::FailureDetector(Network& net, int self,
                                 std::vector<int> monitored, Options opts,
                                 Callback on_dead, Callback on_alive)
    : net_(net),
      self_(self),
      opts_(opts),
      on_dead_(std::move(on_dead)),
      on_alive_(std::move(on_alive)) {
  {
    MutexLock lock(mu_);
    peers_.reserve(monitored.size());
    for (int node : monitored) {
      Peer p;
      p.node = node;
      peers_.push_back(p);
    }
  }
  {
    MutexLock lock(stop_mu_);
    thread_ = std::thread([this] { run(); });
  }
}

FailureDetector::~FailureDetector() { stop(); }

void FailureDetector::stop() {
  // Mirrors NodeLoop::stop(): the kShutdown is sent before stop_mu_ is
  // taken (a blocking send under a mutex the loop thread could need is a
  // deadlock), and the flag keeps it single-shot.
  if (!stop_sent_.exchange(true, std::memory_order_acq_rel)) {
    Message bye;
    bye.kind = MsgKind::kShutdown;
    bye.dst_node = self_;
    net_.send(self_, std::move(bye));
  }
  MutexLock lock(stop_mu_);
  if (thread_.joinable()) thread_.join();
}

NodeHealth FailureDetector::health(int node) const {
  MutexLock lock(mu_);
  for (const Peer& p : peers_)
    if (p.node == node) return p.health;
  return NodeHealth::kAlive;  // unmonitored nodes are presumed healthy
}

std::vector<int> FailureDetector::dead_nodes() const {
  MutexLock lock(mu_);
  std::vector<int> out;
  for (const Peer& p : peers_)
    if (p.health == NodeHealth::kDead) out.push_back(p.node);
  return out;
}

FailureDetector::Counters FailureDetector::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

void FailureDetector::mark_dead(int node) {
  bool fire = false;
  {
    MutexLock lock(mu_);
    for (Peer& p : peers_) {
      if (p.node != node) continue;
      fire = p.health != NodeHealth::kDead;
      p.health = NodeHealth::kDead;
      p.pinned_dead = true;
      p.misses = opts_.suspect_n;
      break;
    }
  }
  if (fire && on_dead_) on_dead_(node);
}

void FailureDetector::mark_alive(int node) {
  bool fire = false;
  {
    MutexLock lock(mu_);
    for (Peer& p : peers_) {
      if (p.node != node) continue;
      fire = p.health == NodeHealth::kDead;
      p.health = NodeHealth::kAlive;
      p.pinned_dead = false;
      p.misses = 0;
      break;
    }
  }
  if (fire && on_alive_) on_alive_(node);
}

void FailureDetector::add_monitored(int node) {
  MutexLock lock(mu_);
  for (const Peer& p : peers_)
    if (p.node == node) return;
  Peer p;
  p.node = node;
  peers_.push_back(p);
}

void FailureDetector::remove_monitored(int node) {
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].node != node) continue;
    peers_.erase(peers_.begin() + static_cast<std::ptrdiff_t>(i));
    return;
  }
}

bool FailureDetector::pump_until(std::chrono::steady_clock::time_point deadline) {
  Channel& inbox = net_.inbox(self_);
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // One last non-blocking sweep so pongs already queued are not pushed
      // into the next round by an unlucky wakeup.
      while (auto msg = inbox.try_receive()) {
        if (msg->kind == MsgKind::kShutdown) return false;
        if (msg->kind != MsgKind::kPong) continue;
        MutexLock lock(mu_);
        ++counters_.pongs_received;
        for (Peer& p : peers_)
          if (p.node == msg->src_node && msg->v >= 0 &&
              static_cast<std::uint64_t>(msg->v) > p.last_pong_seq)
            p.last_pong_seq = static_cast<std::uint64_t>(msg->v);
      }
      return true;
    }
    auto msg = inbox.receive_for(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!msg.has_value()) {
      if (inbox.closed()) return false;
      continue;  // timeout: re-check the deadline
    }
    if (msg->kind == MsgKind::kShutdown) return false;
    if (msg->kind != MsgKind::kPong) continue;  // stray traffic is ignored
    MutexLock lock(mu_);
    ++counters_.pongs_received;
    for (Peer& p : peers_)
      if (p.node == msg->src_node && msg->v >= 0 &&
          static_cast<std::uint64_t>(msg->v) > p.last_pong_seq)
        p.last_pong_seq = static_cast<std::uint64_t>(msg->v);
  }
}

void FailureDetector::evaluate_round(std::uint64_t seq,
                                     std::vector<int>& newly_dead,
                                     std::vector<int>& newly_alive) {
  MutexLock lock(mu_);
  for (Peer& p : peers_) {
    if (p.pinned_dead) continue;
    if (p.last_pong_seq >= seq) {
      if (p.health == NodeHealth::kDead) newly_alive.push_back(p.node);
      p.health = NodeHealth::kAlive;
      p.misses = 0;
      continue;
    }
    ++p.misses;
    if (p.misses >= opts_.suspect_n) {
      if (p.health != NodeHealth::kDead) {
        ++counters_.dead_declarations;
        newly_dead.push_back(p.node);
      }
      p.health = NodeHealth::kDead;
    } else if (p.health == NodeHealth::kAlive) {
      p.health = NodeHealth::kSuspect;
      ++counters_.suspect_events;
    }
  }
}

void FailureDetector::run() {
  std::uint64_t seq = 0;
  while (true) {
    ++seq;
    const auto round_start = std::chrono::steady_clock::now();
    std::vector<int> targets;
    {
      MutexLock lock(mu_);
      for (const Peer& p : peers_)
        if (!p.pinned_dead) targets.push_back(p.node);
      counters_.pings_sent += static_cast<std::int64_t>(targets.size());
    }
    for (int node : targets) {
      Message ping;
      ping.kind = MsgKind::kPing;
      ping.dst_node = node;
      ping.v = static_cast<std::int64_t>(seq);
      if (net_.checksums_enabled()) stamp_checksum(ping);
      net_.send(self_, std::move(ping));
    }
    // Phase 1: the pong window. Phase 2: idle until the next probe, still
    // draining the inbox (late pongs land in last_pong_seq and count for
    // the next evaluation, which keeps a slow-but-alive node suspect
    // rather than dead).
    if (!pump_until(round_start + std::chrono::milliseconds(opts_.timeout_ms)))
      return;
    std::vector<int> newly_dead, newly_alive;
    evaluate_round(seq, newly_dead, newly_alive);
    for (int node : newly_dead) {
      PFM_DEBUG("detector: node ", node, " declared dead at round ", seq);
      if (on_dead_) on_dead_(node);
    }
    for (int node : newly_alive) {
      PFM_DEBUG("detector: node ", node, " revived at round ", seq);
      if (on_alive_) on_alive_(node);
    }
    if (!pump_until(round_start + std::chrono::milliseconds(opts_.interval_ms)))
      return;
    // Late-credit pass: a pong for this round that arrived after the
    // timeout window still proves the node alive — undo the miss so a
    // slow-but-responsive node oscillates at suspect instead of drifting
    // to dead.
    newly_alive.clear();
    {
      MutexLock lock(mu_);
      for (Peer& p : peers_) {
        if (p.pinned_dead || p.last_pong_seq < seq) continue;
        if (p.health == NodeHealth::kDead) newly_alive.push_back(p.node);
        p.health = NodeHealth::kAlive;
        p.misses = 0;
      }
    }
    for (int node : newly_alive) {
      PFM_DEBUG("detector: node ", node, " late pong at round ", seq);
      if (on_alive_) on_alive_(node);
    }
  }
}

}  // namespace pfm
