// MPI-like derived datatypes on top of nested FALLS (paper sections 3-4:
// "MPI data types can be built on top of them"; "the scatter and gather
// procedures can also be used to implement MPI's pack and unpack").
//
// A Datatype describes a byte selection pattern over a buffer. Constructors
// mirror the classic MPI type builders; every datatype lowers to a FallsSet
// plus an extent, and pack/unpack are the gather/scatter of section 8.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "falls/falls.h"
#include "util/buffer.h"

namespace pfm {

class Datatype {
 public:
  /// `size` contiguous bytes (MPI_BYTE-style base type of length size).
  static Datatype contiguous(std::int64_t size);

  /// count repetitions of oldtype (MPI_Type_contiguous).
  static Datatype contiguous(std::int64_t count, const Datatype& oldtype);

  /// count blocks of blocklen oldtype elements, strides apart in oldtype
  /// extents (MPI_Type_vector).
  static Datatype vector(std::int64_t count, std::int64_t blocklen,
                         std::int64_t stride, const Datatype& oldtype);

  /// Blocks at explicit element displacements (MPI_Type_indexed). Both
  /// vectors are in oldtype extents; displacements must be sorted and
  /// non-overlapping.
  static Datatype indexed(std::span<const std::int64_t> blocklens,
                          std::span<const std::int64_t> displs,
                          const Datatype& oldtype);

  /// An n-D subarray of an n-D row-major array (MPI_Type_create_subarray):
  /// elements [starts[d], starts[d]+subsizes[d]) of each dimension.
  static Datatype subarray(std::span<const std::int64_t> sizes,
                           std::span<const std::int64_t> subsizes,
                           std::span<const std::int64_t> starts,
                           std::int64_t elem_size);

  /// Concatenation of fields at byte displacements (MPI_Type_create_struct
  /// restricted to non-overlapping, sorted fields).
  static Datatype struct_type(std::span<const Datatype> fields,
                              std::span<const std::int64_t> byte_displs);

  /// One level of a Galley-style nested-strided access (paper section 2:
  /// the Galley Parallel File System offers a nested strided interface).
  struct StridedLevel {
    std::int64_t count = 1;   ///< repetitions of the inner pattern
    std::int64_t stride = 0;  ///< byte distance between repetitions
  };

  /// Nested-strided pattern: `block_size` contiguous bytes repeated by each
  /// level from innermost to outermost. Every level's stride must be at
  /// least the extent of the pattern below it (Galley forbids overlap too).
  static Datatype nested_strided(std::int64_t block_size,
                                 std::span<const StridedLevel> levels);

  /// Lowers an arbitrary nested FALLS selection to a datatype — the general
  /// escape hatch the paper's "MPI data types can be built on top of
  /// [nested FALLS]" argument rests on.
  static Datatype from_falls(FallsSet falls, std::int64_t extent);

  /// Selected bytes (the type's "size" in MPI terms).
  std::int64_t size() const { return size_; }
  /// Span of the selection pattern in the buffer ("extent").
  std::int64_t extent() const { return extent_; }
  const FallsSet& falls() const { return falls_; }

  /// Packs `count` repetitions of this type from `src` (the type tiles
  /// every `extent()` bytes) into the contiguous `dest`. Returns bytes
  /// packed (count * size()).
  std::int64_t pack(std::span<const std::byte> src, std::int64_t count,
                    std::span<std::byte> dest) const;

  /// Unpacks the contiguous `src` into `count` repetitions of the pattern
  /// in `dest`. Returns bytes unpacked.
  std::int64_t unpack(std::span<const std::byte> src, std::int64_t count,
                      std::span<std::byte> dest) const;

 private:
  Datatype(FallsSet falls, std::int64_t extent);

  FallsSet falls_;
  std::int64_t size_ = 0;
  std::int64_t extent_ = 0;
};

}  // namespace pfm
