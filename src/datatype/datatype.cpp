#include "datatype/datatype.h"

#include <stdexcept>

#include "falls/compress.h"
#include "layout/array_layout.h"
#include "redist/gather_scatter.h"

namespace pfm {

Datatype::Datatype(FallsSet falls, std::int64_t extent)
    : falls_(std::move(falls)), extent_(extent) {
  validate_falls_set(falls_);
  size_ = set_size(falls_);
  if (extent_ < set_extent(falls_))
    throw std::invalid_argument("Datatype: extent smaller than the pattern");
  if (extent_ < 1) throw std::invalid_argument("Datatype: extent < 1");
}

Datatype Datatype::contiguous(std::int64_t size) {
  if (size < 1) throw std::invalid_argument("Datatype::contiguous: size < 1");
  return Datatype({make_falls(0, size - 1, size, 1)}, size);
}

namespace {

/// Replicates an oldtype pattern at `count` slots `slot_stride` oldtype
/// extents apart, starting at element offset `first` (all in oldtype
/// extents). Returns the byte-space FALLS.
FallsSet replicate(const Datatype& oldtype, std::int64_t first,
                   std::int64_t count, std::int64_t slot_stride) {
  const std::int64_t ext = oldtype.extent();
  const FallsSet& pat = oldtype.falls();
  const bool full = set_size(pat) == ext &&
                    set_runs(pat) == std::vector<LineSegment>{{0, ext - 1}};
  if (full && slot_stride == 1) {
    // Contiguous repetitions of a dense type collapse to one segment.
    return {make_falls(first * ext, (first + count) * ext - 1, count * ext, 1)};
  }
  Falls f;
  f.l = first * ext;
  f.r = f.l + ext - 1;
  f.s = slot_stride * ext;
  f.n = count;
  if (!full) f.inner = pat;
  return {f};
}

}  // namespace

Datatype Datatype::contiguous(std::int64_t count, const Datatype& oldtype) {
  if (count < 1) throw std::invalid_argument("Datatype::contiguous: count < 1");
  return Datatype(replicate(oldtype, 0, count, 1), count * oldtype.extent());
}

Datatype Datatype::vector(std::int64_t count, std::int64_t blocklen,
                          std::int64_t stride, const Datatype& oldtype) {
  if (count < 1 || blocklen < 1)
    throw std::invalid_argument("Datatype::vector: count/blocklen < 1");
  if (stride < blocklen)
    throw std::invalid_argument("Datatype::vector: stride < blocklen (overlap)");
  FallsSet out;
  if (blocklen == 1) {
    out = replicate(oldtype, 0, count, stride);
  } else {
    // One block = blocklen contiguous oldtypes; blocks stride apart.
    FallsSet block = replicate(oldtype, 0, blocklen, 1);
    Falls f;
    f.l = 0;
    f.r = blocklen * oldtype.extent() - 1;
    f.s = stride * oldtype.extent();
    f.n = count;
    // A dense block needs no inner refinement.
    if (set_size(block) != blocklen * oldtype.extent()) f.inner = std::move(block);
    out = {f};
  }
  const std::int64_t extent =
      ((count - 1) * stride + blocklen) * oldtype.extent();
  return Datatype(std::move(out), extent);
}

Datatype Datatype::indexed(std::span<const std::int64_t> blocklens,
                           std::span<const std::int64_t> displs,
                           const Datatype& oldtype) {
  if (blocklens.size() != displs.size() || blocklens.empty())
    throw std::invalid_argument("Datatype::indexed: bad block arrays");
  FallsSet out;
  std::int64_t max_end = 0;
  for (std::size_t k = 0; k < blocklens.size(); ++k) {
    if (blocklens[k] < 1)
      throw std::invalid_argument("Datatype::indexed: blocklen < 1");
    if (displs[k] < 0)
      throw std::invalid_argument("Datatype::indexed: negative displacement");
    FallsSet block = replicate(oldtype, displs[k], blocklens[k], 1);
    out.insert(out.end(), block.begin(), block.end());
    max_end = std::max(max_end, (displs[k] + blocklens[k]) * oldtype.extent());
  }
  validate_falls_set(out);  // enforces sorted, non-overlapping blocks
  return Datatype(std::move(out), max_end);
}

Datatype Datatype::subarray(std::span<const std::int64_t> sizes,
                            std::span<const std::int64_t> subsizes,
                            std::span<const std::int64_t> starts,
                            std::int64_t elem_size) {
  const std::size_t rank = sizes.size();
  if (subsizes.size() != rank || starts.size() != rank || rank == 0)
    throw std::invalid_argument("Datatype::subarray: rank mismatch");
  for (std::size_t d = 0; d < rank; ++d) {
    if (subsizes[d] < 1 || starts[d] < 0 || starts[d] + subsizes[d] > sizes[d])
      throw std::invalid_argument("Datatype::subarray: bad slice");
  }
  // Build via the layout machinery: a subarray is what a "processor" owning
  // index range [starts, starts+subsizes) of every dimension holds. Express
  // each dimension as an explicit FALLS and nest inwards.
  ArrayDesc desc{{sizes.begin(), sizes.end()}, elem_size};
  FallsSet current;
  bool full = true;
  std::int64_t suffix = elem_size;
  for (std::size_t d = rank; d-- > 0;) {
    const std::int64_t stride = suffix;
    suffix *= sizes[d];
    const bool dim_full = subsizes[d] == sizes[d];
    if (dim_full && full) continue;
    Falls f;
    f.l = starts[d] * stride;
    f.r = (starts[d] + subsizes[d]) * stride - 1;
    f.s = f.r - f.l + 1;
    f.n = 1;
    if (!full) {
      const std::int64_t k = subsizes[d];
      if (k == 1) {
        f.inner = current;
      } else {
        f.inner = {make_nested(0, stride - 1, stride, k, current)};
      }
    }
    current = {f};
    full = false;
  }
  if (full) current = {make_falls(0, suffix - 1, suffix, 1)};
  return Datatype(std::move(current), array_bytes(desc));
}

Datatype Datatype::struct_type(std::span<const Datatype> fields,
                               std::span<const std::int64_t> byte_displs) {
  if (fields.size() != byte_displs.size() || fields.empty())
    throw std::invalid_argument("Datatype::struct_type: bad field arrays");
  FallsSet out;
  std::int64_t extent = 0;
  for (std::size_t k = 0; k < fields.size(); ++k) {
    if (byte_displs[k] < 0)
      throw std::invalid_argument("Datatype::struct_type: negative displacement");
    const FallsSet shifted = shift_set(fields[k].falls(), byte_displs[k]);
    out.insert(out.end(), shifted.begin(), shifted.end());
    extent = std::max(extent, byte_displs[k] + fields[k].extent());
  }
  validate_falls_set(out);  // enforces sorted, non-overlapping fields
  return Datatype(std::move(out), extent);
}

Datatype Datatype::nested_strided(std::int64_t block_size,
                                  std::span<const StridedLevel> levels) {
  if (block_size < 1)
    throw std::invalid_argument("Datatype::nested_strided: block size < 1");
  FallsSet falls{make_falls(0, block_size - 1, block_size, 1)};
  std::int64_t extent = block_size;
  for (const StridedLevel& level : levels) {
    if (level.count < 1)
      throw std::invalid_argument("Datatype::nested_strided: count < 1");
    if (level.count > 1 && level.stride < extent)
      throw std::invalid_argument(
          "Datatype::nested_strided: stride overlaps the inner pattern");
    const std::int64_t stride = level.count > 1 ? level.stride : extent;
    Falls outer;
    outer.l = 0;
    outer.r = extent - 1;
    outer.s = stride;
    outer.n = level.count;
    // A dense inner pattern needs no refinement; keep blocks flat then.
    if (set_size(falls) != extent) outer.inner = std::move(falls);
    falls = {std::move(outer)};
    extent = (level.count - 1) * stride + extent;
  }
  return Datatype(std::move(falls), extent);
}

Datatype Datatype::from_falls(FallsSet falls, std::int64_t extent) {
  return Datatype(std::move(falls), extent);
}

std::int64_t Datatype::pack(std::span<const std::byte> src, std::int64_t count,
                            std::span<std::byte> dest) const {
  if (count < 1) throw std::invalid_argument("Datatype::pack: count < 1");
  const IndexSet idx(falls_, extent_);
  return gather(dest, src, 0, count * extent_ - 1, idx);
}

std::int64_t Datatype::unpack(std::span<const std::byte> src, std::int64_t count,
                              std::span<std::byte> dest) const {
  if (count < 1) throw std::invalid_argument("Datatype::unpack: count < 1");
  const IndexSet idx(falls_, extent_);
  return scatter(dest, src, 0, count * extent_ - 1, idx);
}

}  // namespace pfm
