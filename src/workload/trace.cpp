#include "workload/trace.h"

#include <algorithm>
#include <stdexcept>

namespace pfm {

AccessTrace make_sequential(std::int64_t total, std::int64_t chunk) {
  if (total < 1 || chunk < 1)
    throw std::invalid_argument("make_sequential: bad sizes");
  AccessTrace out;
  for (std::int64_t off = 0; off < total; off += chunk)
    out.push_back({off, std::min(chunk, total - off)});
  return out;
}

AccessTrace make_strided(std::int64_t first, std::int64_t record,
                         std::int64_t stride, std::int64_t count) {
  if (first < 0 || record < 1 || count < 1 || (count > 1 && stride < record))
    throw std::invalid_argument("make_strided: bad parameters");
  AccessTrace out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::int64_t k = 0; k < count; ++k)
    out.push_back({first + k * stride, record});
  return out;
}

AccessTrace make_nested_strided(std::int64_t first, std::int64_t record,
                                std::int64_t stride, std::int64_t count,
                                std::int64_t outer_stride,
                                std::int64_t outer_count) {
  if (outer_count < 1)
    throw std::invalid_argument("make_nested_strided: bad outer count");
  const AccessTrace inner = make_strided(first, record, stride, count);
  const std::int64_t inner_span = trace_span(inner) - first;
  if (outer_count > 1 && outer_stride < inner_span)
    throw std::invalid_argument("make_nested_strided: outer stride overlaps");
  AccessTrace out;
  out.reserve(inner.size() * static_cast<std::size_t>(outer_count));
  for (std::int64_t g = 0; g < outer_count; ++g)
    for (const AccessOp& op : inner)
      out.push_back({op.offset + g * outer_stride, op.len});
  return out;
}

AccessTrace make_random(Rng& rng, std::int64_t total, std::int64_t len,
                        std::int64_t count) {
  if (total < 1 || len < 1 || count < 1 || len * count > total)
    throw std::invalid_argument("make_random: requests do not fit");
  // Slot-based sampling keeps requests disjoint: choose `count` of the
  // total/len aligned slots.
  const std::int64_t slots = total / len;
  std::vector<std::int64_t> chosen;
  std::vector<std::int64_t> all(static_cast<std::size_t>(slots));
  for (std::int64_t s = 0; s < slots; ++s) all[static_cast<std::size_t>(s)] = s;
  std::shuffle(all.begin(), all.end(), rng.engine());
  chosen.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(count));
  std::sort(chosen.begin(), chosen.end());
  AccessTrace out;
  out.reserve(chosen.size());
  for (std::int64_t s : chosen) out.push_back({s * len, len});
  return out;
}

std::int64_t trace_bytes(const AccessTrace& trace) {
  std::int64_t total = 0;
  for (const AccessOp& op : trace) total += op.len;
  return total;
}

std::int64_t trace_span(const AccessTrace& trace) {
  std::int64_t span = 0;
  for (const AccessOp& op : trace) span = std::max(span, op.offset + op.len);
  return span;
}

ReplayStats replay_writes(ClusterfileClient& client, std::int64_t view_id,
                          const AccessTrace& trace,
                          std::span<const std::byte> data) {
  ReplayStats out;
  for (const AccessOp& op : trace) {
    if (op.offset + op.len > static_cast<std::int64_t>(data.size()))
      throw std::invalid_argument("replay_writes: trace exceeds the buffer");
    const auto t = client.write(
        view_id, op.offset, op.offset + op.len - 1,
        data.subspan(static_cast<std::size_t>(op.offset),
                     static_cast<std::size_t>(op.len)));
    ++out.ops;
    out.bytes += t.bytes;
    out.messages += t.messages;
    out.t_m_us += t.t_m_us;
    out.t_g_us += t.t_g_us;
    out.t_w_us += t.t_w_us;
  }
  return out;
}

ReplayStats replay_reads(ClusterfileClient& client, std::int64_t view_id,
                         const AccessTrace& trace, std::span<std::byte> out_buf) {
  ReplayStats out;
  for (const AccessOp& op : trace) {
    if (op.offset + op.len > static_cast<std::int64_t>(out_buf.size()))
      throw std::invalid_argument("replay_reads: trace exceeds the buffer");
    const auto t = client.read(
        view_id, op.offset, op.offset + op.len - 1,
        out_buf.subspan(static_cast<std::size_t>(op.offset),
                        static_cast<std::size_t>(op.len)));
    ++out.ops;
    out.bytes += t.bytes;
    out.messages += t.messages;
    out.t_m_us += t.t_m_us;
    out.t_g_us += t.t_g_us;
    out.t_w_us += t.t_w_us;
  }
  return out;
}

}  // namespace pfm
