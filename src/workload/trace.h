// Synthetic access-trace generation and replay.
//
// The workload characterization studies the paper builds its motivation on
// (Nieuwejaar/Kotz CHARISMA, Crandall et al., Smirni/Reed — paper section 1)
// found parallel scientific applications issue many small, regularly
// strided requests. This module generates such traces — sequential, simple
// strided, nested strided, and uniform random — and replays them against a
// Clusterfile view, so benchmarks can study how physical/logical matching
// behaves under realistic request streams rather than one bulk write.
#pragma once

#include <cstdint>
#include <vector>

#include "clusterfile/client.h"
#include "util/buffer.h"
#include "util/rng.h"

namespace pfm {

/// One request against a view: bytes [offset, offset + len) in view space.
struct AccessOp {
  std::int64_t offset = 0;
  std::int64_t len = 0;
};

using AccessTrace = std::vector<AccessOp>;

/// Whole-range sequential access in `chunk`-byte requests (last one may be
/// short). total >= 1, chunk >= 1.
AccessTrace make_sequential(std::int64_t total, std::int64_t chunk);

/// Simple strided access: `count` records of `record` bytes, record starts
/// `stride` apart, beginning at `first`.
AccessTrace make_strided(std::int64_t first, std::int64_t record,
                         std::int64_t stride, std::int64_t count);

/// Nested strided: the strided trace above, repeated `outer_count` times at
/// `outer_stride` intervals (the CHARISMA nested-strided shape).
AccessTrace make_nested_strided(std::int64_t first, std::int64_t record,
                                std::int64_t stride, std::int64_t count,
                                std::int64_t outer_stride,
                                std::int64_t outer_count);

/// `count` non-overlapping random requests of `len` bytes within
/// [0, total), sorted by offset.
AccessTrace make_random(Rng& rng, std::int64_t total, std::int64_t len,
                        std::int64_t count);

/// Total bytes a trace touches.
std::int64_t trace_bytes(const AccessTrace& trace);
/// Largest offset+len over the trace (0 for an empty trace).
std::int64_t trace_span(const AccessTrace& trace);

/// Replay accounting.
struct ReplayStats {
  std::int64_t ops = 0;
  std::int64_t bytes = 0;
  std::int64_t messages = 0;  ///< server requests across all ops
  double t_m_us = 0;
  double t_g_us = 0;
  double t_w_us = 0;
};

/// Replays the trace as writes through `view_id` of `client`; data[k] backs
/// view byte k (the trace must stay within data.size()).
ReplayStats replay_writes(ClusterfileClient& client, std::int64_t view_id,
                          const AccessTrace& trace,
                          std::span<const std::byte> data);

/// Replays the trace as reads; `out` is filled at the trace's positions.
ReplayStats replay_reads(ClusterfileClient& client, std::int64_t view_id,
                         const AccessTrace& trace, std::span<std::byte> out);

}  // namespace pfm
