#include "intersect/project.h"

#include <stdexcept>
#include <vector>

#include "falls/compress.h"
#include "falls/set_ops.h"
#include "util/check.h"

namespace pfm {

namespace {

/// First/last member byte of a nested FALLS in O(depth) (inner sets are
/// sorted, so front/back bound the members).
std::int64_t first_member(const Falls& f) {
  return f.leaf() ? f.l : f.l + first_member(f.inner.front());
}
std::int64_t last_member(const Falls& f) {
  const std::int64_t base = f.l + (f.n - 1) * f.s;
  return f.leaf() ? base + f.block_len() - 1 : base + last_member(f.inner.back());
}

/// Structural fast path: tries to project one top-level FALLS of the
/// intersection without enumerating its runs. Two safe cases:
///  (a) the element has no gaps across the FALLS's whole span (checked via
///      MAP(last) - MAP(first) == last - first) — MAP is a plain shift
///      there, so the FALLS keeps its structure, nesting included;
///  (b) a flat FALLS whose stride is a whole number of element periods and
///      whose first block maps contiguously — every repetition advances by
///      a fixed number of element bytes, one strided family.
/// Returns false when neither applies (caller falls back to runs).
bool project_structural(const Falls& f, const ElementRef& ref,
                        std::int64_t origin, FallsSet& out) {
  const std::int64_t fb = first_member(f);
  const std::int64_t lb = last_member(f);
  const std::int64_t a_first = map_to_element(ref, origin + fb);
  const std::int64_t a_last = map_to_element(ref, origin + lb);
  if (a_last - a_first == lb - fb) {
    // Case (a): dense over [fb, lb] — pure shift.
    const std::int64_t delta = a_first - fb;
    if (f.l + delta < 0) return false;
    out.push_back(shift_falls(f, delta));
    return true;
  }
  if (!f.leaf()) return false;
  // The per-repetition advance in element space is constant when the
  // element's tiled byte set is invariant under a shift dividing f's
  // stride. Two sound sub-cases:
  //  (b) f.s is a whole number of pattern periods (any element shape);
  //  (c) the element is one flat family whose blocks seamlessly tile the
  //      pattern (n0*s0 == T), making its byte set s0-periodic, and f.s is
  //      a multiple of s0 — the BLOCK/CYCLIC(b) shapes of HPF layouts.
  std::int64_t bytes_per_shift = -1;
  if (f.s % ref.pattern_size == 0) {
    bytes_per_shift = (f.s / ref.pattern_size) * ref.element_period();
  } else if (ref.falls->size() == 1 && (*ref.falls)[0].leaf()) {
    const Falls& a = (*ref.falls)[0];
    if (a.n * a.s == ref.pattern_size && f.s % a.s == 0)
      bytes_per_shift = (f.s / a.s) * a.block_len();
  }
  if (bytes_per_shift < 0) return false;
  const std::int64_t b0 = map_to_element(ref, origin + f.r);
  if (b0 - a_first + 1 != f.block_len()) return false;  // block not contiguous
  out.push_back(make_falls(a_first, a_first + f.block_len() - 1,
                           f.n > 1 ? bytes_per_shift : f.block_len(), f.n));
  return true;
}

}  // namespace

namespace {

/// Post-conditions common to both projection paths (paper section 7): the
/// projection is a valid index set of exactly the intersection's size — the
/// property that makes the gather and scatter sides of a transfer agree.
/// Only when the element sits at the intersection origin is the projection
/// confined to the element's share of one common period; an element at a
/// smaller displacement sees origin-shifted indices that may legitimately
/// reach past it (redistribution plans never hit that case — build_plan
/// requires equal displacements).
void dcheck_projection(const Projection& p, const Intersection& x,
                       const PatternElement& e) {
  if constexpr (kDcheckEnabled) {
    validate_falls_set(p.falls);
    PFM_DCHECK(set_size(p.falls) == set_size(x.falls),
               "projection has ", set_size(p.falls), " bytes, intersection has ",
               set_size(x.falls));
    if (e.displacement == x.origin)
      PFM_DCHECK(set_extent(p.falls) <= p.period,
                 "projection escapes its period ", p.period);
  }
}

}  // namespace

Projection project(const Intersection& x, const PatternElement& e) {
  Projection out;
  out.period = set_size(e.falls) * (x.period / e.pattern_size);
  if (x.falls.empty()) return out;

  const ElementRef ref{&e.falls, e.displacement, e.pattern_size};

  // Attempt the structural projection for every member; any failure falls
  // back to exact run enumeration for the whole set (mixing both could
  // break the sorted-disjoint invariant cheaply maintained below).
  {
    FallsSet structural;
    bool ok = true;
    for (const Falls& f : x.falls) {
      if (!project_structural(f, ref, x.origin, structural)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      std::sort(structural.begin(), structural.end(),
                [](const Falls& p, const Falls& q) { return p.l < q.l; });
      // The images are byte-disjoint (MAP is injective), but members with
      // interleaved *spans* would violate the FallsSet invariant, and the
      // shifted form's span slack (trailing non-member indices inside
      // blocks) can poke past the projection period; fall back to exact
      // runs in either rare case rather than emit an invalid set.
      std::int64_t prev_end = 0;
      for (const Falls& g : structural) {
        if (g.l < prev_end) {
          ok = false;
          break;
        }
        prev_end = falls_extent(g);
      }
      if (ok && prev_end > out.period) ok = false;
      if (ok) {
        out.falls = std::move(structural);
        dcheck_projection(out, x, e);
        return out;
      }
    }
  }

  // A maximal contiguous run of the intersection lies wholly inside the
  // element's byte set, and MAP is order-preserving on that set, so each run
  // maps to one contiguous run of element offsets.
  std::vector<LineSegment> mapped;
  for (const LineSegment& run : set_runs(x.falls)) {
    const std::int64_t lo = map_to_element(ref, x.origin + run.l);
    // MAP is monotonic over file offsets, so `mapped` stays sorted. Two file
    // runs separated only by non-member bytes of e become adjacent in
    // element space; merge them so the runs passed to compression are maximal.
    if (!mapped.empty() && lo <= mapped.back().r + 1) {
      mapped.back().r = lo + (run.r - run.l);
    } else {
      mapped.push_back({lo, lo + (run.r - run.l)});
    }
  }
  out.falls = compress_runs_nested(mapped);
  dcheck_projection(out, x, e);
  return out;
}

std::int64_t projection_size(const Projection& p) { return set_size(p.falls); }

}  // namespace pfm
