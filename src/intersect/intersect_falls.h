// Flat FALLS intersection (Ramaswamy & Banerjee, used by paper section 7).
//
// INTERSECT-FALLS(f1, f2) computes a FALLS set denoting exactly the byte
// indices common to f1 and f2. The algorithm exploits periodicity: the
// intersection pattern repeats with period T = lcm(s1, s2), so only segment
// pairs within one period need to be examined; each intersecting pair yields
// one FALLS with stride T whose repetition count is clipped by the shorter
// of the two families' remaining extents.
#pragma once

#include "falls/falls.h"

namespace pfm {

/// Byte-exact intersection of two flat FALLS (inner sets are ignored; use
/// intersect_nested for trees). Result members are sorted by l.
FallsSet intersect_falls(const Falls& f1, const Falls& f2);

/// Intersection of two flat FALLS sets (pairwise union).
FallsSet intersect_falls_sets(const FallsSet& a, const FallsSet& b);

}  // namespace pfm
