#include "intersect/cut.h"

#include <algorithm>
#include <stdexcept>

#include "util/arith.h"

namespace pfm {

namespace {

/// Appends the cut of block k of f (bytes clipped to [a, b], relative to a).
/// `complete` is true when the block lies fully inside [a, b].
void append_partial_block(FallsSet& out, const Falls& f, std::int64_t k,
                          std::int64_t a, std::int64_t b) {
  const std::int64_t base = f.l + k * f.s;
  const std::int64_t lo = std::max(a, base);
  const std::int64_t hi = std::min(b, base + f.block_len() - 1);
  if (lo > hi) return;
  Falls piece;
  piece.l = lo - a;
  piece.r = hi - a;
  piece.s = hi - lo + 1;
  piece.n = 1;
  if (!f.leaf()) {
    piece.inner = cut_set(f.inner, lo - base, hi - base);
    if (piece.inner.empty()) return;  // no member bytes survive the cut
  }
  out.push_back(std::move(piece));
}

}  // namespace

FallsSet cut_falls(const Falls& f, std::int64_t a, std::int64_t b) {
  if (a > b) throw std::invalid_argument("cut_falls: a > b");
  FallsSet out;
  // Blocks overlapping [a, b]: l + k*s <= b  and  l + k*s + blen - 1 >= a.
  const std::int64_t blen = f.block_len();
  std::int64_t k_lo = div_ceil(a - f.l - (blen - 1), f.s);
  std::int64_t k_hi = div_floor(b - f.l, f.s);
  k_lo = std::max<std::int64_t>(k_lo, 0);
  k_hi = std::min<std::int64_t>(k_hi, f.n - 1);
  if (k_lo > k_hi) return out;

  // Complete blocks are those lying fully inside [a, b].
  std::int64_t kc_lo = k_lo;
  std::int64_t kc_hi = k_hi;
  if (f.l + kc_lo * f.s < a) ++kc_lo;
  if (f.l + kc_hi * f.s + blen - 1 > b) --kc_hi;

  if (kc_lo > kc_hi) {
    // No complete block: at most two partial ones (possibly the same block).
    append_partial_block(out, f, k_lo, a, b);
    if (k_hi != k_lo) append_partial_block(out, f, k_hi, a, b);
    return out;
  }
  if (k_lo < kc_lo) append_partial_block(out, f, k_lo, a, b);
  Falls mid;
  mid.l = f.l + kc_lo * f.s - a;
  mid.r = mid.l + blen - 1;
  mid.s = f.s;
  mid.n = kc_hi - kc_lo + 1;
  mid.inner = f.inner;
  out.push_back(std::move(mid));
  if (k_hi > kc_hi) append_partial_block(out, f, k_hi, a, b);
  return out;
}

FallsSet cut_set(const FallsSet& set, std::int64_t a, std::int64_t b) {
  FallsSet out;
  for (const Falls& f : set) {
    FallsSet piece = cut_falls(f, a, b);
    out.insert(out.end(), std::make_move_iterator(piece.begin()),
               std::make_move_iterator(piece.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const Falls& x, const Falls& y) { return x.l < y.l; });
  return out;
}

FallsSet rebase_period(const FallsSet& set, std::int64_t shift, std::int64_t T) {
  if (T <= 0) throw std::invalid_argument("rebase_period: T <= 0");
  if (shift < 0 || shift >= T)
    throw std::invalid_argument("rebase_period: shift out of [0, T)");
  if (set_extent(set) > T)
    throw std::invalid_argument("rebase_period: set extent exceeds period");
  if (shift == 0) return set;
  // Bytes at [shift, T) move to the front; bytes at [0, shift) wrap to the
  // back, offset by T - shift.
  FallsSet out = cut_set(set, shift, T - 1);
  FallsSet wrapped = cut_set(set, 0, shift - 1);
  for (Falls& f : wrapped) out.push_back(shift_falls(f, T - shift));
  return out;
}

}  // namespace pfm
