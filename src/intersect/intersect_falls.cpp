#include "intersect/intersect_falls.h"

#include <algorithm>

#include "util/arith.h"

namespace pfm {

namespace {

/// Emits the FALLS for the intersecting segment pair (i1, i2) and all of its
/// repetitions at +k*T, k >= 0 (clipped by both families' extents).
void emit_pair(FallsSet& out, const Falls& f1, const Falls& f2, std::int64_t i1,
               std::int64_t i2, std::int64_t T, std::int64_t per1,
               std::int64_t per2) {
  const std::int64_t a1 = f1.l + i1 * f1.s;
  const std::int64_t b1 = a1 + f1.block_len() - 1;
  const std::int64_t a2 = f2.l + i2 * f2.s;
  const std::int64_t b2 = a2 + f2.block_len() - 1;
  const std::int64_t lo = std::max(a1, a2);
  const std::int64_t hi = std::min(b1, b2);
  if (lo > hi) return;
  const std::int64_t reps1 = (f1.n - 1 - i1) / per1;
  const std::int64_t reps2 = (f2.n - 1 - i2) / per2;
  const std::int64_t count = std::min(reps1, reps2) + 1;
  out.push_back(make_falls(lo, hi, T, count));
}

/// Index window of f2 segments overlapping [a1, b1].
std::pair<std::int64_t, std::int64_t> overlap_window(const Falls& f2,
                                                     std::int64_t a1,
                                                     std::int64_t b1) {
  std::int64_t lo = div_ceil(a1 - f2.l - (f2.block_len() - 1), f2.s);
  std::int64_t hi = div_floor(b1 - f2.l, f2.s);
  lo = std::max<std::int64_t>(lo, 0);
  hi = std::min<std::int64_t>(hi, f2.n - 1);
  return {lo, hi};
}

}  // namespace

FallsSet intersect_falls(const Falls& f1, const Falls& f2) {
  FallsSet out;
  const std::int64_t T = lcm64(f1.s, f2.s);
  const std::int64_t per1 = T / f1.s;  // segments of f1 per period
  const std::int64_t per2 = T / f2.s;

  // Pairs (i1, i2) and (i1 + k*per1, i2 + k*per2) describe the same
  // congruence class, whose members repeat with period T. We enumerate the
  // *first* member of every class — the one where stepping back one period
  // would make an index negative, i.e. i1 < per1 or i2 < per2 — and extend
  // it with a repetition count clipped by both families' extents.
  const std::int64_t i1_max = std::min(f1.n, per1);
  for (std::int64_t i1 = 0; i1 < i1_max; ++i1) {
    const std::int64_t a1 = f1.l + i1 * f1.s;
    const auto [i2_lo, i2_hi] = overlap_window(f2, a1, a1 + f1.block_len() - 1);
    for (std::int64_t i2 = i2_lo; i2 <= i2_hi; ++i2)
      emit_pair(out, f1, f2, i1, i2, T, per1, per2);
  }
  const std::int64_t i2_max = std::min(f2.n, per2);
  for (std::int64_t i2 = 0; i2 < i2_max; ++i2) {
    const std::int64_t a2 = f2.l + i2 * f2.s;
    auto [i1_lo, i1_hi] = overlap_window(f1, a2, a2 + f2.block_len() - 1);
    // Classes with i1 < per1 were already covered by the first loop.
    i1_lo = std::max(i1_lo, per1);
    for (std::int64_t i1 = i1_lo; i1 <= i1_hi; ++i1)
      emit_pair(out, f1, f2, i1, i2, T, per1, per2);
  }
  std::sort(out.begin(), out.end(),
            [](const Falls& x, const Falls& y) { return x.l < y.l; });
  return out;
}

FallsSet intersect_falls_sets(const FallsSet& a, const FallsSet& b) {
  FallsSet out;
  for (const Falls& f1 : a)
    for (const Falls& f2 : b) {
      FallsSet piece = intersect_falls(f1, f2);
      out.insert(out.end(), std::make_move_iterator(piece.begin()),
                 std::make_move_iterator(piece.end()));
    }
  std::sort(out.begin(), out.end(),
            [](const Falls& x, const Falls& y) { return x.l < y.l; });
  return out;
}

}  // namespace pfm
