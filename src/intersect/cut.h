// CUT-FALLS (paper section 7): restricting a FALLS to an index interval.
//
// CUT-FALLS(f, a, b) yields the set of FALLS describing the bytes of f that
// lie in [a, b], re-expressed relative to a. The result is at most three
// FALLS: a clipped head segment, the run of complete blocks, and a clipped
// tail segment. The nested variant recursively cuts inner FALLS of blocks
// that are only partially inside the interval.
#pragma once

#include <cstdint>

#include "falls/falls.h"

namespace pfm {

/// Flat cut of the outer structure of f (inner sets are carried over to
/// blocks that survive whole; partially covered blocks of a nested FALLS
/// get their inner sets cut recursively). Result is relative to a, sorted,
/// non-overlapping. Requires a <= b; indices may exceed f's extent (the cut
/// simply yields fewer bytes).
FallsSet cut_falls(const Falls& f, std::int64_t a, std::int64_t b);

/// Cut of a whole set: union of member cuts (relative to a).
FallsSet cut_set(const FallsSet& set, std::int64_t a, std::int64_t b);

/// Rotates a partitioning-pattern element left by `shift` within a pattern
/// of period T: byte x of the result corresponds to byte (x + shift) mod T
/// of the input's periodic tiling. Used by PREPROCESS to align two patterns
/// with different displacements. Requires 0 <= shift < T and set extent <= T.
FallsSet rebase_period(const FallsSet& set, std::int64_t shift, std::int64_t T);

}  // namespace pfm
