// Intersection projection (paper section 7): re-expressing an intersection,
// computed in file-linear space, in the linear space of one of the two
// intersected partition elements. The projections are exactly the gather /
// scatter index sets the Clusterfile write path precomputes at view-set time
// (PROJ_V^{V∩S} at the compute node, PROJ_S^{V∩S} at the I/O node).
#pragma once

#include <cstdint>

#include "falls/falls.h"
#include "intersect/intersect.h"
#include "mapping/map.h"

namespace pfm {

/// A projection: byte indices within the element's linear space, periodic
/// with `period` element bytes (the element's share of one common pattern
/// period).
struct Projection {
  FallsSet falls;
  std::int64_t period = 0;

  bool empty() const { return falls.empty(); }
};

/// Projects intersection X onto element e (which must be one of the two
/// elements X was computed from; every byte of X must belong to e).
/// The result is compressed back into nested FALLS to preserve regularity.
Projection project(const Intersection& x, const PatternElement& e);

/// Number of bytes one period of the projection covers in element space
/// (== set_size(x.falls); exposed for sanity checks).
std::int64_t projection_size(const Projection& p);

}  // namespace pfm
