#include "intersect/intersect.h"

#include <algorithm>
#include <stdexcept>

#include "intersect/cut.h"
#include "intersect/intersect_falls.h"
#include "util/arith.h"
#include "util/check.h"

namespace pfm {

FallsSet intersect_aux(const FallsSet& s1, std::int64_t a1, std::int64_t b1,
                       const FallsSet& s2, std::int64_t a2, std::int64_t b2) {
  if (b1 - a1 != b2 - a2)
    throw std::invalid_argument("intersect_aux: window lengths differ");
  FallsSet out;
  for (const Falls& f1 : s1) {
    const FallsSet cuts1 = cut_falls(f1, a1, b1);
    for (const Falls& f2 : s2) {
      const FallsSet cuts2 = cut_falls(f2, a2, b2);
      for (const Falls& g1 : cuts1) {
        for (const Falls& g2 : cuts2) {
          // Leaf fast path: intersecting with one dense block is CUT-FALLS
          // (paper section 7 uses CUT for exactly this). This keeps the
          // result compact — a cut yields at most three FALLS where the
          // segment-pair enumeration of INTERSECT-FALLS yields one per
          // segment. Only valid at the leaves: deeper recursion relies on
          // result strides being common multiples of both parents'.
          if (g1.leaf() && g2.leaf()) {
            const Falls* block = nullptr;
            const Falls* other = nullptr;
            if (g1.n == 1) {
              block = &g1;
              other = &g2;
            } else if (g2.n == 1) {
              block = &g2;
              other = &g1;
            }
            if (block != nullptr) {
              for (const Falls& piece : cut_falls(*other, block->l, block->r))
                out.push_back(shift_falls(piece, block->l));
              continue;
            }
          }
          for (const Falls& h : intersect_falls(g1, g2)) {
            if (g1.leaf() && g2.leaf()) {
              out.push_back(h);
              continue;
            }
            // h's blocks occupy a fixed window inside one block of g1 and
            // one block of g2; recurse on the inner sets over those windows.
            const std::int64_t len = h.r - h.l;
            const std::int64_t u1 = mod_floor(h.l - g1.l, g1.s);
            const std::int64_t u2 = mod_floor(h.l - g2.l, g2.s);
            FallsSet inner =
                intersect_aux(g1.inner, u1, u1 + len, g2.inner, u2, u2 + len);
            if (inner.empty()) continue;
            out.push_back(make_nested(h.l, h.r, h.s, h.n, std::move(inner)));
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Falls& x, const Falls& y) { return x.l < y.l; });
  return out;
}

namespace {

/// PREPROCESS for one element: rotate to the aligned origin and extend over
/// the common period.
FallsSet preprocess(const PatternElement& e, std::int64_t origin,
                    std::int64_t common_period) {
  const std::int64_t shift = mod_floor(origin - e.displacement, e.pattern_size);
  FallsSet aligned = rebase_period(e.falls, shift, e.pattern_size);
  const std::int64_t reps = common_period / e.pattern_size;
  if (reps == 1) return aligned;
  return FallsSet{wrap_outer(std::move(aligned), e.pattern_size, reps)};
}

}  // namespace

Intersection intersect_nested(const PatternElement& e1, const PatternElement& e2) {
  if (e1.pattern_size < 1 || e2.pattern_size < 1)
    throw std::invalid_argument("intersect_nested: pattern size < 1");
  // Full recursive validation of both inputs: every algebraic step below
  // (cutting, rebasing, height equalization) assumes sorted non-overlapping
  // members with inner sets confined to their blocks.
  if constexpr (kDcheckEnabled) {
    validate_falls_set(e1.falls);
    validate_falls_set(e2.falls);
  }
  if (set_extent(e1.falls) > e1.pattern_size ||
      set_extent(e2.falls) > e2.pattern_size)
    throw std::invalid_argument("intersect_nested: element exceeds its pattern");

  Intersection out;
  out.period = lcm64(e1.pattern_size, e2.pattern_size);
  out.origin = std::max(e1.displacement, e2.displacement);
  if (e1.falls.empty() || e2.falls.empty()) return out;

  FallsSet s1 = preprocess(e1, out.origin, out.period);
  FallsSet s2 = preprocess(e2, out.origin, out.period);

  // Equalize nesting heights (paper: "the height of the shorter tree can be
  // transformed by adding outer FALLS"; we equivalently refine the leaves).
  const int h = std::max(set_height(s1), set_height(s2));
  s1 = equalize_height(s1, h);
  s2 = equalize_height(s2, h);

  out.falls = intersect_aux(s1, 0, out.period - 1, s2, 0, out.period - 1);
  if constexpr (kDcheckEnabled) {
    validate_falls_set(out.falls);
    PFM_DCHECK(set_extent(out.falls) <= out.period,
               "intersection escapes the common period");
  }
  return out;
}

}  // namespace pfm
