// Nested FALLS intersection (paper section 7, algorithms INTERSECT and
// INTERSECT-AUX).
//
// Given two partition elements S1, S2 belonging to partitioning patterns P1,
// P2 (sizes T1, T2, displacements d1, d2), INTERSECT computes a nested FALLS
// set denoting, in file-linear space relative to the common aligned origin,
// the bytes that belong to both elements within one common period
// lcm(T1, T2). PREPROCESS first extends both patterns over the common period
// and aligns them at max(d1, d2) by rotating the pattern with the smaller
// displacement.
#pragma once

#include <cstdint>

#include "falls/falls.h"

namespace pfm {

/// One partition element in its pattern context (inputs to INTERSECT).
struct PatternElement {
  FallsSet falls;                 ///< the element's nested FALLS set
  std::int64_t pattern_size = 0;  ///< SIZE of the enclosing pattern
  std::int64_t displacement = 0;  ///< file displacement of the pattern
};

/// Result of the nested intersection.
struct Intersection {
  /// Byte indices common to both elements within one common period,
  /// relative to the aligned origin max(d1, d2).
  FallsSet falls;
  /// The common period lcm(T1, T2).
  std::int64_t period = 0;
  /// The aligned origin max(d1, d2): falls indices are file offsets minus
  /// this value.
  std::int64_t origin = 0;

  bool empty() const { return falls.empty(); }
};

/// INTERSECT with PREPROCESS. Throws std::invalid_argument on invalid
/// inputs (pattern sizes < 1, element extent exceeding its pattern size).
Intersection intersect_nested(const PatternElement& e1, const PatternElement& e2);

/// INTERSECT-AUX on two already-aligned sets over a common span: the raw
/// recursive kernel, exposed for unit tests. Limits [a1, b1] and [a2, b2]
/// are the cut windows of the current recursion level (paper line 10);
/// their lengths must match. The result is relative to a1 (== relative to
/// a2 in the aligned space).
FallsSet intersect_aux(const FallsSet& s1, std::int64_t a1, std::int64_t b1,
                       const FallsSet& s2, std::int64_t a2, std::int64_t b2);

}  // namespace pfm
