// Mapping between two partition elements of the same file (paper §6.2):
// the composition MAP_S(MAP_V^-1(x)) carries an offset of element V to the
// corresponding offset of element S through file-linear space.
#pragma once

#include <cstdint>
#include <optional>

#include "mapping/map.h"

namespace pfm {

/// Offset of `to` corresponding to offset `from_off` of `from`. The file
/// byte MAP_from^-1(from_off) need not belong to `to`; `round` selects the
/// behaviour exactly as in map_to_element.
std::int64_t map_between(const ElementRef& from, const ElementRef& to,
                         std::int64_t from_off, Round round = Round::kExact);

/// True when byte from_off of `from` denotes the same file byte as some
/// offset of `to` (i.e. the exact composition is defined).
bool maps_exactly(const ElementRef& from, const ElementRef& to,
                  std::int64_t from_off);

/// Maps the access interval [lo, hi] of `from` onto `to`: lo rounds to the
/// next member byte, hi to the previous (the paper's extremity mapping,
/// write pseudocode lines 3-4). Returns std::nullopt when the interval
/// covers no byte of `to`.
struct IntervalMap {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};
std::optional<IntervalMap> map_interval(const ElementRef& from, const ElementRef& to,
                                        std::int64_t lo, std::int64_t hi);

}  // namespace pfm
