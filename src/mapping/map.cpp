#include "mapping/map.h"

#include <stdexcept>

#include "falls/set_ops.h"
#include "util/arith.h"
#include "util/check.h"

namespace pfm {

namespace {

std::optional<std::int64_t> set_next_member(const FallsSet& set, std::int64_t x);
std::optional<std::int64_t> set_prev_member(const FallsSet& set, std::int64_t x);

std::int64_t falls_first_byte(const Falls& f) {
  return f.leaf() ? f.l : f.l + *set_next_member(f.inner, 0);
}

/// Smallest member byte of f that is >= x, within f's extent.
std::optional<std::int64_t> falls_next_member(const Falls& f, std::int64_t x) {
  if (x <= f.l) return falls_first_byte(f);
  const std::int64_t rel = x - f.l;
  std::int64_t k = rel / f.s;
  if (k >= f.n) return std::nullopt;
  const std::int64_t within = rel - k * f.s;
  if (f.leaf()) {
    if (within < f.block_len()) return x;
  } else {
    const auto nb = set_next_member(f.inner, within);
    if (nb.has_value()) return f.l + k * f.s + *nb;
  }
  // x falls past this block's member bytes: use the next block, if any.
  ++k;
  if (k >= f.n) return std::nullopt;
  return f.l + k * f.s + (f.leaf() ? 0 : *set_next_member(f.inner, 0));
}

/// Largest member byte of f that is <= x.
std::optional<std::int64_t> falls_prev_member(const Falls& f, std::int64_t x) {
  if (x < f.l) return std::nullopt;
  const std::int64_t rel = x - f.l;
  std::int64_t k = std::min(rel / f.s, f.n - 1);
  const std::int64_t within = rel - k * f.s;
  if (f.leaf()) {
    if (within < f.block_len()) return x;
    return f.l + k * f.s + f.block_len() - 1;  // end of this block
  }
  const auto pb = set_prev_member(f.inner, within);
  if (pb.has_value()) return f.l + k * f.s + *pb;
  // x precedes every member byte of this block: use the previous block.
  --k;
  if (k < 0) return std::nullopt;
  return f.l + k * f.s + *set_prev_member(f.inner, f.block_len() - 1);
}

std::optional<std::int64_t> set_next_member(const FallsSet& set, std::int64_t x) {
  std::optional<std::int64_t> best;
  for (const Falls& f : set) {
    const auto c = falls_next_member(f, x);
    if (c.has_value() && (!best || *c < *best)) best = c;
  }
  return best;
}

std::optional<std::int64_t> set_prev_member(const FallsSet& set, std::int64_t x) {
  std::optional<std::int64_t> best;
  for (const Falls& f : set) {
    const auto c = falls_prev_member(f, x);
    if (c.has_value() && (!best || *c > *best)) best = c;
  }
  return best;
}

std::int64_t falls_aux_inverse(const Falls& f, std::int64_t k) {
  const std::int64_t per_block = f.leaf() ? f.block_len() : set_size(f.inner);
  const std::int64_t rep = k / per_block;
  const std::int64_t off = k % per_block;
  if (rep >= f.n) throw std::out_of_range("map_aux_inverse: rank beyond FALLS size");
  if (f.leaf()) return f.l + rep * f.s + off;
  return f.l + rep * f.s + map_aux_inverse(f.inner, off);
}

}  // namespace

std::int64_t ElementRef::element_period() const {
  return set_size(*falls);
}

std::int64_t map_aux(const FallsSet& set, std::int64_t x, Round round) {
  switch (round) {
    case Round::kExact:
      if (!set_contains(set, x))
        throw std::domain_error("map_aux: offset not in partition element");
      return set_rank(set, x);
    case Round::kNext: {
      const auto nb = set_next_member(set, x);
      if (!nb.has_value())
        throw std::domain_error("map_aux: no next member byte in period");
      return set_rank(set, *nb);
    }
    case Round::kPrev: {
      const auto pb = set_prev_member(set, x);
      if (!pb.has_value())
        throw std::domain_error("map_aux: no previous member byte in period");
      return set_rank(set, *pb);
    }
  }
  throw std::logic_error("map_aux: bad Round");
}

std::int64_t map_aux_inverse(const FallsSet& set, std::int64_t k) {
  if (k < 0) throw std::out_of_range("map_aux_inverse: negative rank");
  for (const Falls& f : set) {
    const std::int64_t sz = falls_size(f);
    if (k < sz) return falls_aux_inverse(f, k);
    k -= sz;
  }
  throw std::out_of_range("map_aux_inverse: rank beyond set size");
}

std::optional<std::int64_t> round_to_member(const ElementRef& e,
                                            std::int64_t file_off, Round round) {
  const FallsSet& set = *e.falls;
  const std::int64_t T = e.pattern_size;
  if (set.empty()) return std::nullopt;
  std::int64_t rel = file_off - e.displacement;
  if (rel < 0) {
    if (round == Round::kPrev) return std::nullopt;
    rel = 0;
  }
  std::int64_t period = div_floor(rel, T);
  const std::int64_t phase = mod_floor(rel, T);
  if (round == Round::kExact) {
    return set_contains(set, phase) ? std::optional(file_off) : std::nullopt;
  }
  if (round == Round::kNext) {
    const auto nb = set_next_member(set, phase);
    if (nb.has_value()) return e.displacement + period * T + *nb;
    // No member at or after phase in this period: first member of the next.
    return e.displacement + (period + 1) * T + *set_next_member(set, 0);
  }
  // Round::kPrev
  const auto pb = set_prev_member(set, phase);
  if (pb.has_value()) return e.displacement + period * T + *pb;
  if (period == 0) return std::nullopt;
  return e.displacement + (period - 1) * T + *set_prev_member(set, T - 1);
}

std::int64_t map_to_element(const ElementRef& e, std::int64_t file_off, Round round) {
  if (e.falls == nullptr || e.pattern_size <= 0)
    throw std::invalid_argument("map_to_element: bad ElementRef");
  std::int64_t x = file_off;
  if (round != Round::kExact) {
    const auto m = round_to_member(e, file_off, round);
    if (!m.has_value())
      throw std::domain_error("map_to_element: no member byte in that direction");
    x = *m;
  }
  const std::int64_t rel = x - e.displacement;
  if (rel < 0)
    throw std::domain_error("map_to_element: offset before file displacement");
  const std::int64_t T = e.pattern_size;
  const std::int64_t period = rel / T;
  const std::int64_t phase = rel % T;
  const std::int64_t rank = map_aux(*e.falls, phase);
  // MAP-AUX^-1 ∘ MAP-AUX must be the identity on member bytes (paper
  // section 6) — checked here at the aux level so the two directions do not
  // recurse into each other's checks.
  PFM_DCHECK(map_aux_inverse(*e.falls, rank) == phase,
             "MAP not invertible at file offset ", x);
  return period * e.element_period() + rank;
}

std::int64_t map_to_file(const ElementRef& e, std::int64_t elem_off) {
  if (e.falls == nullptr || e.pattern_size <= 0)
    throw std::invalid_argument("map_to_file: bad ElementRef");
  if (elem_off < 0) throw std::domain_error("map_to_file: negative element offset");
  const std::int64_t sz = e.element_period();
  if (sz == 0) throw std::domain_error("map_to_file: empty partition element");
  const std::int64_t period = elem_off / sz;
  const std::int64_t within = elem_off % sz;
  const std::int64_t phase = map_aux_inverse(*e.falls, within);
  PFM_DCHECK(set_contains(*e.falls, phase),
             "MAP^-1 produced a non-member byte for element offset ", elem_off);
  return e.displacement + period * e.pattern_size + phase;
}

}  // namespace pfm
