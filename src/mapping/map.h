// Mapping functions between the linear space of a file and the linear space
// of one partition element (subfile or view) — paper section 6.
//
// A partition element is a set of nested FALLS S belonging to a partitioning
// pattern of size `pattern_size` applied repeatedly from byte `displacement`
// of the file. MAP_S(x) gives the element-linear offset a file offset maps
// to; MAP_S^-1 is its inverse. For file offsets that do not belong to S, the
// Round::next / Round::prev variants return the mapping of the next /
// previous file byte that does (used to map access-interval extremities,
// lines 3-4 of the paper's write pseudocode).
#pragma once

#include <cstdint>
#include <optional>

#include "falls/falls.h"

namespace pfm {

/// Rounding behaviour of MAP for offsets outside the element's byte set.
enum class Round {
  kExact,  ///< require membership; throw std::domain_error otherwise
  kNext,   ///< map the next file byte belonging to the element
  kPrev,   ///< map the previous file byte belonging to the element
};

/// A partition element in context: the FALLS set plus the enclosing
/// pattern's displacement and period. All mapping functions take this.
struct ElementRef {
  const FallsSet* falls = nullptr;
  std::int64_t displacement = 0;
  std::int64_t pattern_size = 0;  ///< SIZE of the partitioning pattern

  std::int64_t element_period() const;  ///< SIZE of the element's set
};

/// MAP_S: file offset -> element offset.
///
/// MAP_S(x) = ((x - disp) div size(P)) * size(S)
///            + MAP-AUX_S((x - disp) mod size(P))
///
/// With Round::kNext/kPrev, out-of-set offsets round to the nearest member
/// byte in the requested direction; kPrev below the first member byte (or
/// kNext past the last when the pattern has no further period) throws
/// std::domain_error. File offsets below the displacement are handled by the
/// rounding rules (kNext rounds into the first period).
std::int64_t map_to_element(const ElementRef& e, std::int64_t file_off,
                            Round round = Round::kExact);

/// MAP_S^-1: element offset -> file offset. Total for element offsets >= 0.
std::int64_t map_to_file(const ElementRef& e, std::int64_t elem_off);

/// The file offset of the next/previous member byte of e at or before/after
/// file_off (inclusive). std::nullopt when kPrev finds no member byte at or
/// below file_off.
std::optional<std::int64_t> round_to_member(const ElementRef& e,
                                            std::int64_t file_off, Round round);

/// MAP-AUX for a set of nested FALLS: rank of x within one pattern period
/// (x relative to the period start). Exposed for tests and the intersection
/// projections. Requires membership under Round::kExact semantics.
std::int64_t map_aux(const FallsSet& set, std::int64_t x, Round round = Round::kExact);

/// MAP-AUX^-1: the byte index (relative to the period start) of the k-th
/// member byte of the set (k = 0-based rank). Throws std::out_of_range when
/// k >= size(set).
std::int64_t map_aux_inverse(const FallsSet& set, std::int64_t k);

}  // namespace pfm
