#include "mapping/compose.h"

#include <stdexcept>

namespace pfm {

std::int64_t map_between(const ElementRef& from, const ElementRef& to,
                         std::int64_t from_off, Round round) {
  const std::int64_t file_off = map_to_file(from, from_off);
  return map_to_element(to, file_off, round);
}

bool maps_exactly(const ElementRef& from, const ElementRef& to,
                  std::int64_t from_off) {
  const std::int64_t file_off = map_to_file(from, from_off);
  const auto m = round_to_member(to, file_off, Round::kExact);
  return m.has_value();
}

std::optional<IntervalMap> map_interval(const ElementRef& from, const ElementRef& to,
                                        std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("map_interval: lo > hi");
  const std::int64_t file_lo = map_to_file(from, lo);
  const std::int64_t file_hi = map_to_file(from, hi);
  const auto to_lo = round_to_member(to, file_lo, Round::kNext);
  const auto to_hi = round_to_member(to, file_hi, Round::kPrev);
  if (!to_lo.has_value() || !to_hi.has_value() || *to_lo > *to_hi)
    return std::nullopt;
  IntervalMap out;
  out.lo = map_to_element(to, *to_lo);
  out.hi = map_to_element(to, *to_hi);
  return out;
}

}  // namespace pfm
