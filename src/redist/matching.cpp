#include "redist/matching.h"

#include <algorithm>

namespace pfm {

double MatchingDegree::score() const {
  if (bytes_per_period == 0) return 0.0;
  // Run coarseness: mean run length normalized by the bytes one element
  // exchanges on average; capped at 1.
  const double per_msg =
      static_cast<double>(bytes_per_period) / static_cast<double>(messages == 0 ? 1 : messages);
  const double coarseness = per_msg == 0.0 ? 0.0 : std::min(1.0, mean_run_bytes / per_msg);
  // Locality and coarseness both in [0, 1]; blend equally but keep the
  // score positive for nonempty plans so ordering is total.
  return 0.5 * (locality + coarseness);
}

MatchingDegree matching_degree(const RedistPlan& plan) {
  MatchingDegree m;
  std::int64_t same_elem_bytes = 0;
  for (const Transfer& t : plan.transfers) {
    m.bytes_per_period += t.bytes_per_period;
    m.runs_per_period += t.runs_per_period;
    m.messages += 1;
    if (t.src_elem == t.dst_elem) same_elem_bytes += t.bytes_per_period;
  }
  if (m.bytes_per_period > 0) {
    m.locality = static_cast<double>(same_elem_bytes) /
                 static_cast<double>(m.bytes_per_period);
    m.mean_run_bytes = static_cast<double>(m.bytes_per_period) /
                       static_cast<double>(m.runs_per_period == 0 ? 1 : m.runs_per_period);
  }
  return m;
}

MatchingDegree matching_degree(const PartitioningPattern& from,
                               const PartitioningPattern& to) {
  return matching_degree(build_plan(from, to));
}

}  // namespace pfm
