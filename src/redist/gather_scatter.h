// Scatter and gather over nested FALLS (paper section 8): copying between
// the non-contiguous byte positions an index set selects and a contiguous
// buffer. The Clusterfile write path gathers view data into a wire buffer at
// the compute node and scatters it into the subfile at the I/O node; the
// same two procedures implement MPI-style pack/unpack (paper section 3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "falls/falls.h"

namespace pfm {

/// One maximal member run of an access interval [v, w], in coordinates an
/// access plan can replay at any congruent position: `rel_lo` is the run
/// start relative to v, `dest_off` the cumulative byte offset of the run in
/// the gathered (wire) buffer.
struct MaterializedRun {
  std::int64_t rel_lo = 0;
  std::int64_t len = 0;
  std::int64_t dest_off = 0;

  bool operator==(const MaterializedRun&) const = default;
};

/// The product of one materialization traversal of an IndexSet over an
/// access interval: every run, the total byte count, and whether the runs
/// form one contiguous region (the paper's fast path — a single memcpy
/// instead of a gather/scatter walk).
struct RunList {
  std::vector<MaterializedRun> runs;
  std::int64_t bytes = 0;
  bool contiguous = true;  ///< vacuously true when empty
};

/// A periodic index set: the FALLS pattern tiled with `period` (>= extent of
/// the set). `runs` caches the maximal runs of one period — the paper's
/// "set of indices computed at view setting", reused by every access.
class IndexSet {
 public:
  IndexSet() = default;
  IndexSet(FallsSet falls, std::int64_t period);

  const FallsSet& falls() const { return falls_; }
  std::int64_t period() const { return period_; }
  /// Bytes per period.
  std::int64_t size() const { return size_; }
  const std::vector<LineSegment>& runs() const { return runs_; }

  /// Number of member bytes in [v, w] of the tiled space.
  std::int64_t count_in(std::int64_t v, std::int64_t w) const;

  /// Invokes fn(l, r) for every maximal member run intersected with [v, w],
  /// in increasing order (runs adjacent across a period boundary are
  /// reported separately).
  template <typename Fn>
  void for_each_run_in(std::int64_t v, std::int64_t w, Fn&& fn) const {
    if (v > w || runs_.empty()) return;
    const std::int64_t first_period = v >= 0 ? v / period_ : 0;
    for (std::int64_t p = first_period; p * period_ <= w; ++p) {
      const std::int64_t base = p * period_;
      for (const LineSegment& run : runs_) {
        const std::int64_t lo = std::max(base + run.l, v);
        const std::int64_t hi = std::min(base + run.r, w);
        if (lo <= hi) fn(lo, hi);
      }
    }
  }

  /// True when the member bytes of [v, w] form one contiguous run (the
  /// Clusterfile fast path that skips gather/scatter entirely).
  bool contiguous_in(std::int64_t v, std::int64_t w) const;

  /// One materialization traversal over [v, w]: the run list with
  /// positions relative to v, the member byte count, and the contiguity
  /// flag — everything count_in + contiguous_in + two for_each_run_in
  /// passes used to compute separately on the access hot path.
  RunList materialize_in(std::int64_t v, std::int64_t w) const;

 private:
  FallsSet falls_;
  std::int64_t period_ = 1;
  std::int64_t size_ = 0;
  std::vector<LineSegment> runs_;
};

/// GATHER (paper section 8): copies the bytes of `src` at the member
/// positions of `idx` within [v, w] — `src` backs positions [v, w], i.e.
/// src[0] is position v — into the contiguous `dest`. Returns the number of
/// bytes copied. dest must have room for idx.count_in(v, w) bytes.
std::int64_t gather(std::span<std::byte> dest, std::span<const std::byte> src,
                    std::int64_t v, std::int64_t w, const IndexSet& idx);

/// SCATTER: the reverse copy, from contiguous `src` to the member positions
/// of `idx` within [v, w] of `dest` (dest[0] is position v). Returns bytes
/// copied.
std::int64_t scatter(std::span<std::byte> dest, std::span<const std::byte> src,
                     std::int64_t v, std::int64_t w, const IndexSet& idx);

/// GATHER replayed from a materialized run list: copies rl.bytes bytes from
/// `src` (src[0] is the access interval's lower extremity — rel_lo 0) into
/// the contiguous `dest`. The contiguous case degenerates to one memcpy.
void gather_runs(std::span<std::byte> dest, std::span<const std::byte> src,
                 const RunList& rl);

/// SCATTER replayed from a materialized run list: the reverse copy, from
/// contiguous `src` into `dest` at the runs' relative positions.
void scatter_runs(std::span<std::byte> dest, std::span<const std::byte> src,
                  const RunList& rl);

}  // namespace pfm
