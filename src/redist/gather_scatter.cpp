#include "redist/gather_scatter.h"

#include <cstring>
#include <stdexcept>

#include "falls/set_ops.h"
#include "util/arith.h"
#include "util/check.h"

namespace pfm {

IndexSet::IndexSet(FallsSet falls, std::int64_t period)
    : falls_(std::move(falls)), period_(period) {
  if (period_ < 1) throw std::invalid_argument("IndexSet: period < 1");
  // A malformed (unsorted / overlapping) index set would double-copy some
  // bytes and drop others in gather/scatter; catch it where the set enters.
  if constexpr (kDcheckEnabled) validate_falls_set(falls_);
  if (set_extent(falls_) > period_)
    throw std::invalid_argument("IndexSet: set extent exceeds period");
  size_ = set_size(falls_);
  runs_ = set_runs(falls_);
}

std::int64_t IndexSet::count_in(std::int64_t v, std::int64_t w) const {
  if (v > w || size_ == 0) return 0;
  v = std::max<std::int64_t>(v, 0);
  if (v > w) return 0;
  // Rank of a tiled position x: full periods below plus rank within phase.
  const auto rank = [&](std::int64_t x) {  // member bytes strictly below x
    const std::int64_t p = div_floor(x, period_);
    const std::int64_t phase = mod_floor(x, period_);
    return p * size_ + set_rank(falls_, phase);
  };
  return rank(w + 1) - rank(v);
}

bool IndexSet::contiguous_in(std::int64_t v, std::int64_t w) const {
  bool first = true;
  std::int64_t prev_end = 0;
  bool contiguous = true;
  for_each_run_in(v, w, [&](std::int64_t lo, std::int64_t hi) {
    if (!first && lo != prev_end + 1) contiguous = false;
    prev_end = hi;
    first = false;
  });
  return contiguous;
}

RunList IndexSet::materialize_in(std::int64_t v, std::int64_t w) const {
  RunList rl;
  for_each_run_in(v, w, [&](std::int64_t lo, std::int64_t hi) {
    const std::int64_t len = hi - lo + 1;
    if (!rl.runs.empty() &&
        lo != v + rl.runs.back().rel_lo + rl.runs.back().len)
      rl.contiguous = false;
    rl.runs.push_back({lo - v, len, rl.bytes});
    rl.bytes += len;
  });
  return rl;
}

void gather_runs(std::span<std::byte> dest, std::span<const std::byte> src,
                 const RunList& rl) {
  if (rl.bytes == 0) return;
  PFM_CHECK(static_cast<std::int64_t>(dest.size()) >= rl.bytes,
            "gather_runs: dest holds ", dest.size(), " of ", rl.bytes,
            " bytes");
  if (rl.contiguous) {
    std::memcpy(dest.data(), src.data() + rl.runs.front().rel_lo,
                static_cast<std::size_t>(rl.bytes));
    return;
  }
  for (const MaterializedRun& run : rl.runs)
    std::memcpy(dest.data() + run.dest_off, src.data() + run.rel_lo,
                static_cast<std::size_t>(run.len));
}

void scatter_runs(std::span<std::byte> dest, std::span<const std::byte> src,
                  const RunList& rl) {
  if (rl.bytes == 0) return;
  PFM_CHECK(static_cast<std::int64_t>(src.size()) >= rl.bytes,
            "scatter_runs: src holds ", src.size(), " of ", rl.bytes,
            " bytes");
  if (rl.contiguous) {
    std::memcpy(dest.data() + rl.runs.front().rel_lo, src.data(),
                static_cast<std::size_t>(rl.bytes));
    return;
  }
  for (const MaterializedRun& run : rl.runs)
    std::memcpy(dest.data() + run.rel_lo, src.data() + run.dest_off,
                static_cast<std::size_t>(run.len));
}

std::int64_t gather(std::span<std::byte> dest, std::span<const std::byte> src,
                    std::int64_t v, std::int64_t w, const IndexSet& idx) {
  if (v > w) throw std::invalid_argument("gather: v > w");
  if (static_cast<std::int64_t>(src.size()) < w - v + 1)
    throw std::invalid_argument("gather: src smaller than [v, w]");
  std::int64_t out = 0;
  idx.for_each_run_in(v, w, [&](std::int64_t lo, std::int64_t hi) {
    const std::int64_t len = hi - lo + 1;
    if (out + len > static_cast<std::int64_t>(dest.size()))
      throw std::out_of_range("gather: dest buffer too small");
    std::memcpy(dest.data() + out, src.data() + (lo - v),
                static_cast<std::size_t>(len));
    out += len;
  });
  PFM_DCHECK(out == idx.count_in(v, w),
             "gather copied ", out, " bytes, rank arithmetic says ",
             idx.count_in(v, w));
  return out;
}

std::int64_t scatter(std::span<std::byte> dest, std::span<const std::byte> src,
                     std::int64_t v, std::int64_t w, const IndexSet& idx) {
  if (v > w) throw std::invalid_argument("scatter: v > w");
  if (static_cast<std::int64_t>(dest.size()) < w - v + 1)
    throw std::invalid_argument("scatter: dest smaller than [v, w]");
  std::int64_t in = 0;
  idx.for_each_run_in(v, w, [&](std::int64_t lo, std::int64_t hi) {
    const std::int64_t len = hi - lo + 1;
    if (in + len > static_cast<std::int64_t>(src.size()))
      throw std::out_of_range("scatter: src buffer too small");
    std::memcpy(dest.data() + (lo - v), src.data() + in,
                static_cast<std::size_t>(len));
    in += len;
  });
  PFM_DCHECK(in == idx.count_in(v, w),
             "scatter copied ", in, " bytes, rank arithmetic says ",
             idx.count_in(v, w));
  return in;
}

}  // namespace pfm
