// The baseline the paper argues against (section 3): "by converting between
// two different distributions, it would be inefficient to map each byte
// from one distribution to another". This executor does exactly that — one
// MAP^-1 / element_of / MAP composition per byte — and exists so the
// ablation benchmark can quantify the advantage of segment-wise
// redistribution.
#pragma once

#include <cstdint>
#include <vector>

#include "file_model/pattern.h"
#include "redist/execute.h"
#include "util/buffer.h"

namespace pfm {

/// Byte-at-a-time redistribution via mapping-function composition. Produces
/// the same result as execute_redist; costs one full mapping computation
/// per byte.
RedistStats naive_redistribute(const PartitioningPattern& from,
                               const PartitioningPattern& to,
                               const std::vector<Buffer>& src,
                               std::vector<Buffer>& dst, std::int64_t file_size);

}  // namespace pfm
