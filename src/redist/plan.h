// Redistribution planning (paper section 7): converting a file between two
// partitioning patterns by intersecting every pair of partition elements
// and projecting each nonempty intersection onto both elements' linear
// spaces. The projections are the per-pair gather/scatter index sets; the
// paper's key point is that data then moves as whole segments, never as
// single bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "file_model/pattern.h"
#include "intersect/intersect.h"
#include "redist/gather_scatter.h"

namespace pfm {

/// One source-element -> destination-element data movement.
struct Transfer {
  std::size_t src_elem = 0;
  std::size_t dst_elem = 0;
  /// Common bytes in file space (aligned at the plan's origin, one common
  /// period).
  FallsSet common;
  /// Gather indices in the source element's linear space (periodic).
  IndexSet src_idx;
  /// Scatter indices in the destination element's linear space (periodic).
  IndexSet dst_idx;
  /// Bytes this pair exchanges per common period.
  std::int64_t bytes_per_period = 0;
  /// Contiguous runs per common period (network/copy fragmentation proxy).
  std::int64_t runs_per_period = 0;
};

struct RedistPlan {
  std::int64_t period = 0;  ///< lcm of the two pattern sizes
  std::int64_t origin = 0;  ///< max of the two displacements
  std::vector<Transfer> transfers;

  /// Total bytes exchanged per period (== period when patterns share the
  /// displacement, since every byte has a source and a destination).
  std::int64_t bytes_per_period() const;
  /// Number of element pairs exchanging data (message count proxy).
  std::size_t message_count() const { return transfers.size(); }
};

/// Builds the full pairwise plan. Cost: one nested intersection and two
/// projections per element pair with overlapping data. In checked builds
/// (PFM_DCHECK_ENABLED) the result is passed through validate_plan.
RedistPlan build_plan(const PartitioningPattern& from, const PartitioningPattern& to);

/// Structural invariants of a plan against the two patterns it was built
/// from (paper section 7: the projections of every intersection are
/// equal-sized index sets inside their elements' linear spaces):
///  - period == lcm of the pattern sizes, origin == max displacement;
///  - element indices in range, transfers unique per (src, dst) pair;
///  - per transfer: gather and scatter index sets are structurally valid,
///    fit inside one projection period, and their sizes both equal
///    bytes_per_period (gather total == scatter total);
///  - per source element, the gather index sets of its transfers are
///    pairwise disjoint (each source byte has one destination); likewise
///    per destination element for the scatter sets;
///  - when the patterns share a displacement, the transfers together move
///    exactly `period` bytes (every file byte has a source and a
///    destination).
/// Throws ContractViolation (util/check.h) describing the first violation.
void validate_plan(const RedistPlan& plan, const PartitioningPattern& from,
                   const PartitioningPattern& to);

}  // namespace pfm
