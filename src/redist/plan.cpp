#include "redist/plan.h"

#include "intersect/project.h"

namespace pfm {

std::int64_t RedistPlan::bytes_per_period() const {
  std::int64_t total = 0;
  for (const Transfer& t : transfers) total += t.bytes_per_period;
  return total;
}

RedistPlan build_plan(const PartitioningPattern& from,
                      const PartitioningPattern& to) {
  RedistPlan plan;
  bool first = true;
  for (std::size_t i = 0; i < from.element_count(); ++i) {
    const PatternElement src = from.pattern_element(i);
    for (std::size_t j = 0; j < to.element_count(); ++j) {
      const PatternElement dst = to.pattern_element(j);
      Intersection x = intersect_nested(src, dst);
      if (first) {
        plan.period = x.period;
        plan.origin = x.origin;
        first = false;
      }
      if (x.empty()) continue;
      Transfer t;
      t.src_elem = i;
      t.dst_elem = j;
      t.bytes_per_period = set_size(x.falls);
      t.runs_per_period = static_cast<std::int64_t>(set_runs(x.falls).size());
      const Projection ps = project(x, src);
      const Projection pd = project(x, dst);
      t.src_idx = IndexSet(ps.falls, ps.period);
      t.dst_idx = IndexSet(pd.falls, pd.period);
      t.common = std::move(x.falls);
      plan.transfers.push_back(std::move(t));
    }
  }
  return plan;
}

}  // namespace pfm
