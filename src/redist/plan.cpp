#include "redist/plan.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "intersect/project.h"
#include "util/arith.h"
#include "util/check.h"

namespace pfm {

std::int64_t RedistPlan::bytes_per_period() const {
  std::int64_t total = 0;
  for (const Transfer& t : transfers) total += t.bytes_per_period;
  return total;
}

namespace {

/// Checks that the per-period runs of the index sets are pairwise disjoint
/// within one element's linear space. `runs` holds (transfer index, run)
/// pairs for one element.
void check_disjoint_runs(std::vector<std::pair<std::size_t, LineSegment>> runs,
                         const char* side, std::size_t elem) {
  std::sort(runs.begin(), runs.end(),
            [](const auto& a, const auto& b) { return a.second.l < b.second.l; });
  for (std::size_t i = 1; i < runs.size(); ++i) {
    PFM_CHECK(runs[i].second.l > runs[i - 1].second.r,
              "plan transfers ", runs[i - 1].first, " and ", runs[i].first,
              " overlap in the ", side, " space of element ", elem, " near offset ",
              runs[i].second.l);
  }
}

}  // namespace

void validate_plan(const RedistPlan& plan, const PartitioningPattern& from,
                   const PartitioningPattern& to) {
  PFM_CHECK(plan.period == lcm64(from.size(), to.size()),
            "period ", plan.period, " != lcm(", from.size(), ", ", to.size(), ")");
  PFM_CHECK(plan.origin == std::max(from.displacement(), to.displacement()),
            "origin ", plan.origin, " is not the max displacement");

  // Per-element run lists for the disjointness checks.
  std::vector<std::vector<std::pair<std::size_t, LineSegment>>> src_runs(
      from.element_count());
  std::vector<std::vector<std::pair<std::size_t, LineSegment>>> dst_runs(
      to.element_count());
  std::set<std::pair<std::size_t, std::size_t>> seen_pairs;

  std::int64_t total = 0;
  for (std::size_t ti = 0; ti < plan.transfers.size(); ++ti) {
    const Transfer& t = plan.transfers[ti];
    PFM_CHECK(t.src_elem < from.element_count(), "transfer ", ti,
              ": source element ", t.src_elem, " out of range");
    PFM_CHECK(t.dst_elem < to.element_count(), "transfer ", ti,
              ": destination element ", t.dst_elem, " out of range");
    PFM_CHECK(seen_pairs.emplace(t.src_elem, t.dst_elem).second, "transfer ", ti,
              ": duplicate pair (", t.src_elem, ", ", t.dst_elem, ")");
    validate_falls_set(t.common);
    validate_falls_set(t.src_idx.falls());
    validate_falls_set(t.dst_idx.falls());
    PFM_CHECK(t.bytes_per_period > 0, "transfer ", ti, ": moves no bytes");
    PFM_CHECK(set_size(t.common) == t.bytes_per_period, "transfer ", ti,
              ": common byte set disagrees with bytes_per_period");
    PFM_CHECK(set_extent(t.common) <= plan.period, "transfer ", ti,
              ": common bytes exceed the plan period");
    // Gather total == scatter total (the paper's equal-size projections).
    PFM_CHECK(t.src_idx.size() == t.bytes_per_period, "transfer ", ti,
              ": gather set has ", t.src_idx.size(), " bytes, expected ",
              t.bytes_per_period);
    PFM_CHECK(t.dst_idx.size() == t.bytes_per_period, "transfer ", ti,
              ": scatter set has ", t.dst_idx.size(), " bytes, expected ",
              t.bytes_per_period);
    // Each index set must live inside its element's share of one common
    // period: size(element) * (period / pattern_size) element bytes.
    const std::int64_t src_share =
        set_size(from.element(t.src_elem)) * (plan.period / from.size());
    const std::int64_t dst_share =
        set_size(to.element(t.dst_elem)) * (plan.period / to.size());
    PFM_CHECK(t.src_idx.period() == src_share, "transfer ", ti,
              ": gather period ", t.src_idx.period(), " != element share ",
              src_share);
    PFM_CHECK(t.dst_idx.period() == dst_share, "transfer ", ti,
              ": scatter period ", t.dst_idx.period(), " != element share ",
              dst_share);
    for (const LineSegment& run : t.src_idx.runs())
      src_runs[t.src_elem].emplace_back(ti, run);
    for (const LineSegment& run : t.dst_idx.runs())
      dst_runs[t.dst_elem].emplace_back(ti, run);
    total += t.bytes_per_period;
  }

  for (std::size_t i = 0; i < src_runs.size(); ++i)
    check_disjoint_runs(std::move(src_runs[i]), "gather", i);
  for (std::size_t j = 0; j < dst_runs.size(); ++j)
    check_disjoint_runs(std::move(dst_runs[j]), "scatter", j);

  // Aligned patterns tile the same byte space, so the transfers must cover
  // one full common period with no byte lost or duplicated.
  if (from.displacement() == to.displacement())
    PFM_CHECK(total == plan.period, "plan moves ", total, " bytes per period of ",
              plan.period);
}

RedistPlan build_plan(const PartitioningPattern& from,
                      const PartitioningPattern& to) {
  // Redistribution rewrites the partitioning pattern of a file in place;
  // the displacement is part of the file, not the pattern, so a plan
  // between patterns at different displacements is meaningless (its
  // projections would escape their index periods).
  if (from.displacement() != to.displacement())
    throw std::invalid_argument("build_plan: displacements must match");
  RedistPlan plan;
  bool first = true;
  for (std::size_t i = 0; i < from.element_count(); ++i) {
    const PatternElement src = from.pattern_element(i);
    for (std::size_t j = 0; j < to.element_count(); ++j) {
      const PatternElement dst = to.pattern_element(j);
      Intersection x = intersect_nested(src, dst);
      if (first) {
        plan.period = x.period;
        plan.origin = x.origin;
        first = false;
      }
      if (x.empty()) continue;
      Transfer t;
      t.src_elem = i;
      t.dst_elem = j;
      t.bytes_per_period = set_size(x.falls);
      t.runs_per_period = static_cast<std::int64_t>(set_runs(x.falls).size());
      const Projection ps = project(x, src);
      const Projection pd = project(x, dst);
      t.src_idx = IndexSet(ps.falls, ps.period);
      t.dst_idx = IndexSet(pd.falls, pd.period);
      t.common = std::move(x.falls);
      plan.transfers.push_back(std::move(t));
    }
  }
  if constexpr (kDcheckEnabled) validate_plan(plan, from, to);
  return plan;
}

}  // namespace pfm
