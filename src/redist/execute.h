// In-memory execution of a redistribution plan (paper section 3: "any
// combination of redistributions: disk-disk, disk-memory, memory-disk,
// memory-memory" — this is the memory-memory executor; the Clusterfile
// module runs the same plan across simulated nodes and storage backends).
#pragma once

#include <cstdint>
#include <vector>

#include "file_model/pattern.h"
#include "redist/plan.h"
#include "util/buffer.h"

namespace pfm {

/// Per-execution accounting, used by the benchmarks.
struct RedistStats {
  std::int64_t bytes_moved = 0;
  std::int64_t messages = 0;      ///< gather->scatter handoffs performed
  std::int64_t copy_runs = 0;     ///< total memcpy fragments (both sides)
};

/// Moves a file of `file_size` bytes from per-element buffers laid out by
/// `from` into per-element buffers laid out by `to`. src[i] must hold
/// from.element_bytes(i, file_size) bytes; dst is resized accordingly.
/// Both patterns must share the same displacement (the general aligned case
/// is exercised through the intersection tests; the executor keeps the
/// common case simple). Returns accounting for the benchmarks.
RedistStats execute_redist(const RedistPlan& plan, const PartitioningPattern& from,
                           const PartitioningPattern& to,
                           const std::vector<Buffer>& src, std::vector<Buffer>& dst,
                           std::int64_t file_size);

/// Convenience: plan + execute in one call.
RedistStats redistribute(const PartitioningPattern& from,
                         const PartitioningPattern& to,
                         const std::vector<Buffer>& src, std::vector<Buffer>& dst,
                         std::int64_t file_size);

}  // namespace pfm
