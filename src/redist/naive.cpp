#include "redist/naive.h"

#include <stdexcept>

namespace pfm {

RedistStats naive_redistribute(const PartitioningPattern& from,
                               const PartitioningPattern& to,
                               const std::vector<Buffer>& src,
                               std::vector<Buffer>& dst, std::int64_t file_size) {
  if (from.displacement() != to.displacement())
    throw std::invalid_argument("naive_redistribute: displacements must match");
  if (src.size() != from.element_count())
    throw std::invalid_argument("naive_redistribute: source buffer count mismatch");

  dst.assign(to.element_count(), Buffer{});
  for (std::size_t j = 0; j < to.element_count(); ++j)
    dst[j].resize(static_cast<std::size_t>(to.element_bytes(j, file_size)));

  RedistStats stats;
  for (std::int64_t x = from.displacement(); x < file_size; ++x) {
    const std::size_t i = from.element_of(x);
    const std::size_t j = to.element_of(x);
    const std::int64_t so = from.map_to_element(i, x);
    const std::int64_t to_off = to.map_to_element(j, x);
    dst[j][static_cast<std::size_t>(to_off)] = src[i][static_cast<std::size_t>(so)];
    ++stats.bytes_moved;
    ++stats.copy_runs;
  }
  stats.messages = stats.bytes_moved;  // every byte is its own message
  return stats;
}

}  // namespace pfm
