#include "redist/execute.h"

#include <stdexcept>

#include "util/check.h"
#include "util/thread_pool.h"

namespace pfm {

RedistStats execute_redist(const RedistPlan& plan, const PartitioningPattern& from,
                           const PartitioningPattern& to,
                           const std::vector<Buffer>& src, std::vector<Buffer>& dst,
                           std::int64_t file_size) {
  if (from.displacement() != to.displacement())
    throw std::invalid_argument("execute_redist: displacements must match");
  if (file_size < 0)
    throw std::invalid_argument("execute_redist: negative file size");
  // A plan not built from these patterns would scatter bytes to wrong
  // offsets without any visible failure; revalidate it in checked builds.
  if constexpr (kDcheckEnabled) validate_plan(plan, from, to);
  if (src.size() != from.element_count())
    throw std::invalid_argument("execute_redist: source buffer count mismatch");
  for (std::size_t i = 0; i < src.size(); ++i)
    if (static_cast<std::int64_t>(src[i].size()) != from.element_bytes(i, file_size))
      throw std::invalid_argument("execute_redist: source buffer size mismatch");

  dst.assign(to.element_count(), Buffer{});
  for (std::size_t j = 0; j < to.element_count(); ++j)
    dst[j].resize(static_cast<std::size_t>(to.element_bytes(j, file_size)));

  RedistStats stats;
  if (file_size <= plan.origin) return stats;

  // The transfers are independent: sources are disjoint element byte sets,
  // so two transfers into the same destination element touch disjoint byte
  // ranges. Fan the exchange loop over the shared pool (the paper's nodes
  // exchange pairwise in parallel), one wire buffer per transfer, and
  // reduce the per-transfer stats serially afterwards.
  struct PerTransfer {
    std::int64_t bytes = 0;
    std::int64_t messages = 0;
    std::int64_t runs = 0;
  };
  std::vector<PerTransfer> acc(plan.transfers.size());
  ThreadPool::shared().parallel_for(plan.transfers.size(), [&](std::size_t ti) {
    const Transfer& t = plan.transfers[ti];
    // Element-space limits corresponding to file bytes [origin, file_size):
    // MAP is monotone, so they are plain byte counts.
    const std::int64_t src_limit = from.element_bytes(t.src_elem, file_size);
    const std::int64_t dst_limit = to.element_bytes(t.dst_elem, file_size);
    if (src_limit == 0 || dst_limit == 0) return;
    const std::int64_t n = t.src_idx.count_in(0, src_limit - 1);
    if (n == 0) return;
    Buffer wire(static_cast<std::size_t>(n));
    const std::int64_t gathered =
        gather(wire, src[t.src_elem], 0, src_limit - 1, t.src_idx);
    const std::int64_t scattered =
        scatter(dst[t.dst_elem], wire, 0, dst_limit - 1, t.dst_idx);
    PFM_CHECK(gathered == n && scattered == n,
              "execute_redist: transfer ", t.src_elem, "->", t.dst_elem,
              " gathered ", gathered, " and scattered ", scattered,
              " of ", n, " bytes");
    acc[ti].bytes = n;
    acc[ti].messages = 1;
    std::int64_t runs = 0;
    t.src_idx.for_each_run_in(0, src_limit - 1, [&](std::int64_t, std::int64_t) { ++runs; });
    t.dst_idx.for_each_run_in(0, dst_limit - 1, [&](std::int64_t, std::int64_t) { ++runs; });
    acc[ti].runs = runs;
  });
  for (const PerTransfer& pt : acc) {
    stats.bytes_moved += pt.bytes;
    stats.messages += pt.messages;
    stats.copy_runs += pt.runs;
  }
  return stats;
}

RedistStats redistribute(const PartitioningPattern& from,
                         const PartitioningPattern& to,
                         const std::vector<Buffer>& src, std::vector<Buffer>& dst,
                         std::int64_t file_size) {
  const RedistPlan plan = build_plan(from, to);
  return execute_redist(plan, from, to, src, dst, file_size);
}

}  // namespace pfm
