// Matching degree of two partitions (paper section 9, future work): "We are
// interested in finding a quantitative description of the matching degree
// of two partitions" — this module provides one, derived from the
// redistribution plan, and the ablation benchmark relates it to measured
// redistribution cost.
#pragma once

#include <cstdint>

#include "redist/plan.h"

namespace pfm {

struct MatchingDegree {
  /// Fraction of bytes that stay on the same element index (no inter-element
  /// traffic). 1.0 for identical partitions.
  double locality = 0.0;
  /// Mean contiguous run length (bytes) across all transfers — long runs
  /// mean cheap gather/scatter and good network utilization.
  double mean_run_bytes = 0.0;
  /// Total contiguous runs per common period (fragmentation; gather cost
  /// proxy).
  std::int64_t runs_per_period = 0;
  /// Element pairs exchanging data (message count per period).
  std::int64_t messages = 0;
  /// Bytes exchanged per common period.
  std::int64_t bytes_per_period = 0;

  /// Scalar score in (0, 1]: locality weighted by run coarseness; 1.0 means
  /// a perfect match (identity redistribution, all bytes in one run per
  /// element).
  double score() const;
};

/// Computes the metric from a plan (cheap: uses the per-transfer accounting
/// already stored there).
MatchingDegree matching_degree(const RedistPlan& plan);

/// Convenience: plan + metric.
MatchingDegree matching_degree(const PartitioningPattern& from,
                               const PartitioningPattern& to);

}  // namespace pfm
