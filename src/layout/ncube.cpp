#include "layout/ncube.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "util/arith.h"

namespace pfm {

NcubeMapping::NcubeMapping(int addr_bits, std::vector<int> disk_bit_positions)
    : addr_bits_(addr_bits), disk_bits_(std::move(disk_bit_positions)) {
  if (addr_bits < 1 || addr_bits > 62)
    throw std::invalid_argument("NcubeMapping: addr_bits out of range");
  std::sort(disk_bits_.begin(), disk_bits_.end());
  for (std::size_t i = 0; i < disk_bits_.size(); ++i) {
    if (disk_bits_[i] < 0 || disk_bits_[i] >= addr_bits)
      throw std::invalid_argument("NcubeMapping: disk bit out of range");
    if (i > 0 && disk_bits_[i] == disk_bits_[i - 1])
      throw std::invalid_argument("NcubeMapping: duplicate disk bit");
  }
  for (int b = 0; b < addr_bits; ++b)
    if (!std::binary_search(disk_bits_.begin(), disk_bits_.end(), b))
      offset_bits_.push_back(b);
}

std::int64_t NcubeMapping::disk_of(std::int64_t addr) const {
  if (addr < 0 || addr >= file_size())
    throw std::out_of_range("NcubeMapping::disk_of: address out of range");
  std::int64_t disk = 0;
  for (std::size_t i = 0; i < disk_bits_.size(); ++i)
    disk |= ((addr >> disk_bits_[i]) & 1) << i;
  return disk;
}

std::int64_t NcubeMapping::offset_of(std::int64_t addr) const {
  if (addr < 0 || addr >= file_size())
    throw std::out_of_range("NcubeMapping::offset_of: address out of range");
  std::int64_t off = 0;
  for (std::size_t i = 0; i < offset_bits_.size(); ++i)
    off |= ((addr >> offset_bits_[i]) & 1) << i;
  return off;
}

std::int64_t NcubeMapping::address_of(std::int64_t disk, std::int64_t offset) const {
  if (disk < 0 || disk >= disk_count())
    throw std::out_of_range("NcubeMapping::address_of: disk out of range");
  if (offset < 0 || offset >= disk_size())
    throw std::out_of_range("NcubeMapping::address_of: offset out of range");
  std::int64_t addr = 0;
  for (std::size_t i = 0; i < disk_bits_.size(); ++i)
    addr |= ((disk >> i) & 1) << disk_bits_[i];
  for (std::size_t i = 0; i < offset_bits_.size(); ++i)
    addr |= ((offset >> i) & 1) << offset_bits_[i];
  return addr;
}

namespace {

/// Byte set {x in [0, 2^bits) : for every (pos, val) constraint the bit of x
/// at pos equals val}, built as nested FALLS by fixing the highest
/// constrained bit first. `constraints` is sorted ascending by position.
FallsSet constrained_bits_falls(int bits,
                                std::span<const std::pair<int, int>> constraints) {
  if (constraints.empty()) {
    const std::int64_t span = std::int64_t{1} << bits;
    return {make_falls(0, span - 1, span, 1)};
  }
  const auto [pos, val] = constraints.back();
  const std::int64_t lo = static_cast<std::int64_t>(val) << pos;
  const std::int64_t blen = std::int64_t{1} << pos;
  const std::int64_t stride = std::int64_t{1} << (pos + 1);
  const std::int64_t reps = std::int64_t{1} << (bits - pos - 1);
  FallsSet inner = constrained_bits_falls(pos, constraints.first(constraints.size() - 1));
  Falls f = make_falls(lo, lo + blen - 1, stride, reps);
  // A full-cover inner set adds no structure; keep the FALLS flat then.
  if (!(inner.size() == 1 && inner[0].leaf() && inner[0].l == 0 &&
        inner[0].n == 1 && inner[0].block_len() == blen))
    f.inner = std::move(inner);
  return {f};
}

}  // namespace

FallsSet NcubeMapping::disk_falls(std::int64_t disk) const {
  if (disk < 0 || disk >= disk_count())
    throw std::out_of_range("NcubeMapping::disk_falls: disk out of range");
  std::vector<std::pair<int, int>> constraints;
  for (std::size_t i = 0; i < disk_bits_.size(); ++i)
    constraints.emplace_back(disk_bits_[i], static_cast<int>((disk >> i) & 1));
  return constrained_bits_falls(addr_bits_, constraints);
}

NcubeMapping ncube_striping(std::int64_t file_size, std::int64_t disks,
                            std::int64_t stripe) {
  if (!is_pow2(file_size) || !is_pow2(disks) || !is_pow2(stripe))
    throw std::invalid_argument("ncube_striping: all sizes must be powers of two");
  const int fb = log2_exact(file_size);
  const int db = log2_exact(disks);
  const int sb = log2_exact(stripe);
  if (sb + db > fb)
    throw std::invalid_argument("ncube_striping: stripe*disks exceeds file size");
  std::vector<int> disk_bits;
  for (int b = sb; b < sb + db; ++b) disk_bits.push_back(b);
  return NcubeMapping(fb, std::move(disk_bits));
}

}  // namespace pfm
