// Vesta-style file partitioning (paper section 2 related work): the Vesta
// Parallel File System views a file as a two-dimensional structure — a
// number of cells (vertical stripes), each a sequence of basic striping
// units (BSUs) — and partitions it into subfiles/views with four
// parameters: Vbs/Hbs (vertical/horizontal group sizes) and Vn/Hn (group
// counts), which carve the cell x record grid into rectangular blocks.
//
// The paper's claim: Vesta's scheme is "restricted only to data sets that
// can be partitioned into two-dimensional rectangular arrays", whereas
// nested FALLS express it directly — this module is the constructive proof,
// mapping any Vesta partition onto the file model of section 5.
#pragma once

#include <cstdint>
#include <vector>

#include "falls/falls.h"

namespace pfm {

/// The physical shape of a Vesta file: `cells` vertical stripes of `bsu`
/// bytes per striping unit. Byte (record r, cell c, offset k) of the
/// logical 2-D structure lives at file offset (r * cells + c) * bsu + k —
/// records are horizontal slices across all cells.
struct VestaFile {
  std::int64_t cells = 1;
  std::int64_t bsu = 1;
  std::int64_t records = 1;  ///< records per cell (file length / (cells*bsu))

  std::int64_t bytes() const { return cells * bsu * records; }
};

/// A Vesta partition: the cell axis splits into Vn groups of Vbs cells, the
/// record axis into Hn groups of Hbs records; sub-partition (i, j) owns
/// cell group i and record group j, interleaved cyclically when the group
/// counts do not exhaust the axis (Vesta's round-robin semantics).
struct VestaPartition {
  std::int64_t vbs = 1;  ///< cells per vertical group
  std::int64_t vn = 1;   ///< number of vertical groups
  std::int64_t hbs = 1;  ///< records per horizontal group
  std::int64_t hn = 1;   ///< number of horizontal groups
};

/// Validates shape divisibility: cells % (vbs*vn) == 0 is not required by
/// Vesta (groups wrap cyclically), but vbs*vn <= cells and hbs*hn <=
/// records keep sub-partitions non-empty. Throws std::invalid_argument.
void validate_vesta(const VestaFile& f, const VestaPartition& p);

/// The byte set of sub-partition (vi, hj), 0 <= vi < vn, 0 <= hj < hn, as
/// nested FALLS over the file's byte space — one partition element of the
/// section 5 model.
FallsSet vesta_falls(const VestaFile& f, const VestaPartition& p,
                     std::int64_t vi, std::int64_t hj);

/// All vn*hn sub-partitions, row-major in (vi, hj); together they tile the
/// file exactly.
std::vector<FallsSet> vesta_all(const VestaFile& f, const VestaPartition& p);

/// Ownership oracle for tests: which sub-partition owns the byte at
/// `offset` (row-major (vi, hj) index).
std::int64_t vesta_owner(const VestaFile& f, const VestaPartition& p,
                         std::int64_t offset);

}  // namespace pfm
