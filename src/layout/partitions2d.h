// The two-dimensional matrix partitions used throughout the paper's
// evaluation (section 8.2): an N x N byte matrix, stored row-major in a
// file, split over P partition elements as blocks of rows, blocks of
// columns, or square blocks on a sqrt(P) x sqrt(P) grid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "falls/falls.h"

namespace pfm {

/// The three physical/logical partitions of the evaluation. The paper's
/// shorthand: 'r' = row blocks, 'c' = column blocks, 'b' = square blocks.
enum class Partition2D { kRowBlocks, kColumnBlocks, kSquareBlocks };

/// Parses 'r'/'c'/'b'; throws on anything else.
Partition2D partition2d_from_char(char c);
char partition2d_char(Partition2D p);
std::string to_string(Partition2D p);

/// FALLS set of partition element `elem` (0 <= elem < parts) of an
/// rows x cols byte matrix under the given partition. kSquareBlocks
/// requires `parts` to be a perfect square dividing both extents; the other
/// two require the corresponding extent to be divisible by parts.
FallsSet partition2d_falls(Partition2D p, std::int64_t rows, std::int64_t cols,
                           std::int64_t parts, std::int64_t elem);

/// All elements' sets; together they tile [0, rows*cols).
std::vector<FallsSet> partition2d_all(Partition2D p, std::int64_t rows,
                                      std::int64_t cols, std::int64_t parts);

}  // namespace pfm
