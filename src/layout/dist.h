// HPF-style per-dimension distributions (paper section 3: "support for any
// High-Performance Fortran-style BLOCK and CYCLIC based data distribution on
// disk and in memory is a straightforward application of our approach").
//
// A Dist describes how one array dimension of a given extent is split over a
// number of processors along that dimension of the processor grid. Each
// (dist, extent, procs, proc) combination yields a FALLS over element
// indices [0, extent) of that dimension.
#pragma once

#include <cstdint>
#include <string>

#include "falls/falls.h"

namespace pfm {

enum class DistKind {
  kNone,         ///< dimension not distributed: every processor sees all of it
  kBlock,        ///< contiguous blocks of ceil(extent/procs) elements
  kCyclic,       ///< round-robin single elements (CYCLIC(1))
  kBlockCyclic,  ///< round-robin blocks of a given size (CYCLIC(b))
};

struct Dist {
  DistKind kind = DistKind::kNone;
  std::int64_t block = 1;  ///< block size for kBlockCyclic; ignored otherwise

  static Dist none() { return {DistKind::kNone, 1}; }
  static Dist block_dist() { return {DistKind::kBlock, 1}; }
  static Dist cyclic() { return {DistKind::kCyclic, 1}; }
  static Dist block_cyclic(std::int64_t b) { return {DistKind::kBlockCyclic, b}; }

  bool operator==(const Dist&) const = default;
};

/// The index set of dimension elements owned by processor `proc` out of
/// `procs`, as a FALLS over [0, extent) in element units. For kBlock the
/// block size is ceil(extent/procs) and trailing processors may own a short
/// or empty range; an empty range yields a FALLS with n == 0 converted by
/// the caller (we signal it by returning std::nullopt-like empty set via
/// dist_falls_set).
///
/// extent >= 1, procs >= 1, 0 <= proc < procs required.
FallsSet dist_falls(const Dist& d, std::int64_t extent, std::int64_t procs,
                    std::int64_t proc);

/// Human-readable name ("BLOCK", "CYCLIC", "CYCLIC(4)", "*").
std::string to_string(const Dist& d);

}  // namespace pfm
