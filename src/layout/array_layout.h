// Multidimensional array partitions as nested FALLS (paper sections 3-4).
//
// The most used data structures of parallel scientific applications are
// multidimensional arrays stored row-major in files. An HPF-style
// distribution assigns each dimension a Dist over one axis of a processor
// grid; the bytes owned by one processor then form a nested FALLS whose
// nesting levels correspond to array dimensions — which is exactly the
// regularity the paper's mapping and redistribution algorithms exploit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "falls/falls.h"
#include "layout/dist.h"

namespace pfm {

/// Row-major array of `extents` elements of `elem_size` bytes each.
struct ArrayDesc {
  std::vector<std::int64_t> extents;
  std::int64_t elem_size = 1;
};

/// Processor grid with one axis per array dimension (use extent 1 for axes
/// of dimensions that are not distributed).
struct GridDesc {
  std::vector<std::int64_t> dims;

  std::int64_t total() const;
  /// Row-major linearization of grid coordinates.
  std::vector<std::int64_t> coords(std::int64_t proc) const;
};

/// Total bytes of the array.
std::int64_t array_bytes(const ArrayDesc& a);

/// Row-major byte stride of dimension d (bytes between consecutive indices
/// along d).
std::int64_t dim_stride(const ArrayDesc& a, std::size_t d);

/// Nested FALLS (over the array's byte space) owned by processor `proc` of
/// the grid under per-dimension distributions `dists`. Ranks of extents,
/// dists and grid dims must agree. Returns an empty set for processors that
/// own no element (possible with BLOCK on non-divisible extents).
FallsSet layout_falls(const ArrayDesc& a, std::span<const Dist> dists,
                      const GridDesc& grid, std::int64_t proc);

/// layout_falls for every processor of the grid; result[p] is processor p's
/// set. Together the sets tile [0, array_bytes(a)) exactly.
std::vector<FallsSet> layout_all(const ArrayDesc& a, std::span<const Dist> dists,
                                 const GridDesc& grid);

/// Owner oracle: the grid coordinate along one dimension owning element
/// index `idx` (for tests and the naive baseline).
std::int64_t dist_owner(const Dist& d, std::int64_t extent, std::int64_t procs,
                        std::int64_t idx);

/// Owner oracle over the whole array: processor owning the byte at `offset`.
std::int64_t layout_owner(const ArrayDesc& a, std::span<const Dist> dists,
                          const GridDesc& grid, std::int64_t offset);

}  // namespace pfm
