// nCube-style address-bit-permutation mappings (paper section 2 related
// work): the nCube parallel I/O system builds mapping functions between
// processors' views and disks by permuting the bits of the linear file
// address. A subset of the address bits selects the disk, the remaining bits
// (in order) form the offset within the disk.
//
// The paper's critique — and the reason its FALLS-based mappings are a
// strict superset — is that every size must be a power of two. This module
// implements the nCube scheme both directly (bit arithmetic) and as nested
// FALLS, so tests and benches can demonstrate the equivalence on power-of-
// two shapes and the generality gap elsewhere.
#pragma once

#include <cstdint>
#include <vector>

#include "falls/falls.h"

namespace pfm {

/// A disk mapping over a file of 2^addr_bits bytes distributed over
/// 2^|disk_bits| disks: disk id bits are extracted from the address at the
/// given positions (bit 0 = least significant), offset bits are the
/// remaining positions from low to high.
class NcubeMapping {
 public:
  /// disk_bit_positions must be distinct, each in [0, addr_bits).
  NcubeMapping(int addr_bits, std::vector<int> disk_bit_positions);

  int addr_bits() const { return addr_bits_; }
  std::int64_t file_size() const { return std::int64_t{1} << addr_bits_; }
  std::int64_t disk_count() const { return std::int64_t{1} << disk_bits_.size(); }
  std::int64_t disk_size() const { return file_size() / disk_count(); }

  /// Disk id / within-disk offset of a file address.
  std::int64_t disk_of(std::int64_t addr) const;
  std::int64_t offset_of(std::int64_t addr) const;

  /// Inverse: the file address stored at `offset` of `disk`.
  std::int64_t address_of(std::int64_t disk, std::int64_t offset) const;

  /// The byte set of one disk as nested FALLS — the bridge into the paper's
  /// general model. The set denotes {addr : disk_of(addr) == disk}.
  FallsSet disk_falls(std::int64_t disk) const;

 private:
  int addr_bits_;
  std::vector<int> disk_bits_;    ///< sorted ascending
  std::vector<int> offset_bits_;  ///< remaining positions, ascending
};

/// Classic striping: disk bits are the log2(disks) bits just above the
/// log2(stripe) offset bits, i.e. round-robin stripes of `stripe` bytes.
NcubeMapping ncube_striping(std::int64_t file_size, std::int64_t disks,
                            std::int64_t stripe);

}  // namespace pfm
