#include "layout/partitions2d.h"

#include <cmath>
#include <stdexcept>

#include "layout/array_layout.h"

namespace pfm {

Partition2D partition2d_from_char(char c) {
  switch (c) {
    case 'r': return Partition2D::kRowBlocks;
    case 'c': return Partition2D::kColumnBlocks;
    case 'b': return Partition2D::kSquareBlocks;
  }
  throw std::invalid_argument("partition2d_from_char: expected r, c or b");
}

char partition2d_char(Partition2D p) {
  switch (p) {
    case Partition2D::kRowBlocks: return 'r';
    case Partition2D::kColumnBlocks: return 'c';
    case Partition2D::kSquareBlocks: return 'b';
  }
  return '?';
}

std::string to_string(Partition2D p) {
  switch (p) {
    case Partition2D::kRowBlocks: return "row-blocks";
    case Partition2D::kColumnBlocks: return "column-blocks";
    case Partition2D::kSquareBlocks: return "square-blocks";
  }
  return "?";
}

namespace {

std::int64_t exact_isqrt(std::int64_t x) {
  const auto r = static_cast<std::int64_t>(std::llround(std::sqrt(static_cast<double>(x))));
  if (r * r != x)
    throw std::invalid_argument("square-block partition needs a square part count");
  return r;
}

}  // namespace

FallsSet partition2d_falls(Partition2D p, std::int64_t rows, std::int64_t cols,
                           std::int64_t parts, std::int64_t elem) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("partition2d: bad extents");
  if (parts < 1 || elem < 0 || elem >= parts)
    throw std::invalid_argument("partition2d: bad element index");
  const ArrayDesc a{{rows, cols}, 1};
  switch (p) {
    case Partition2D::kRowBlocks: {
      if (rows % parts != 0)
        throw std::invalid_argument("row-block partition: parts must divide rows");
      const Dist dists[2] = {Dist::block_dist(), Dist::none()};
      return layout_falls(a, dists, GridDesc{{parts, 1}}, elem);
    }
    case Partition2D::kColumnBlocks: {
      if (cols % parts != 0)
        throw std::invalid_argument("column-block partition: parts must divide cols");
      const Dist dists[2] = {Dist::none(), Dist::block_dist()};
      return layout_falls(a, dists, GridDesc{{1, parts}}, elem);
    }
    case Partition2D::kSquareBlocks: {
      const std::int64_t g = exact_isqrt(parts);
      if (rows % g != 0 || cols % g != 0)
        throw std::invalid_argument("square-block partition: grid must divide extents");
      const Dist dists[2] = {Dist::block_dist(), Dist::block_dist()};
      return layout_falls(a, dists, GridDesc{{g, g}}, elem);
    }
  }
  throw std::logic_error("partition2d_falls: bad Partition2D");
}

std::vector<FallsSet> partition2d_all(Partition2D p, std::int64_t rows,
                                      std::int64_t cols, std::int64_t parts) {
  std::vector<FallsSet> out;
  out.reserve(static_cast<std::size_t>(parts));
  for (std::int64_t e = 0; e < parts; ++e)
    out.push_back(partition2d_falls(p, rows, cols, parts, e));
  return out;
}

}  // namespace pfm
