#include "layout/dist.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/arith.h"

namespace pfm {

FallsSet dist_falls(const Dist& d, std::int64_t extent, std::int64_t procs,
                    std::int64_t proc) {
  if (extent < 1) throw std::invalid_argument("dist_falls: extent < 1");
  if (procs < 1) throw std::invalid_argument("dist_falls: procs < 1");
  if (proc < 0 || proc >= procs)
    throw std::invalid_argument("dist_falls: proc out of range");

  switch (d.kind) {
    case DistKind::kNone:
      return {make_falls(0, extent - 1, extent, 1)};
    case DistKind::kBlock: {
      const std::int64_t b = div_ceil(extent, procs);
      const std::int64_t lo = proc * b;
      if (lo >= extent) return {};  // trailing processor with no elements
      const std::int64_t hi = std::min(lo + b, extent) - 1;
      return {make_falls(lo, hi, hi - lo + 1, 1)};
    }
    case DistKind::kCyclic: {
      if (proc >= extent) return {};
      const std::int64_t n = div_ceil(extent - proc, procs);
      return {make_falls(proc, proc, procs, n)};
    }
    case DistKind::kBlockCyclic: {
      const std::int64_t b = d.block;
      if (b < 1) throw std::invalid_argument("dist_falls: block size < 1");
      const std::int64_t stride = b * procs;
      const std::int64_t lo = proc * b;
      if (lo >= extent) return {};
      // Number of (possibly clipped) blocks this processor owns.
      const std::int64_t n_full = (extent - lo) / stride;
      const std::int64_t rem = (extent - lo) % stride;
      FallsSet out;
      const std::int64_t full_n = n_full + (rem >= b ? 1 : 0);
      if (full_n > 0)
        out.push_back(make_falls(lo, lo + b - 1, stride, full_n));
      if (rem > 0 && rem < b) {
        // Clipped trailing block.
        const std::int64_t tail_lo = lo + n_full * stride;
        out.push_back(make_falls(tail_lo, tail_lo + rem - 1, rem, 1));
      }
      return out;
    }
  }
  throw std::logic_error("dist_falls: bad DistKind");
}

std::string to_string(const Dist& d) {
  switch (d.kind) {
    case DistKind::kNone: return "*";
    case DistKind::kBlock: return "BLOCK";
    case DistKind::kCyclic: return "CYCLIC";
    case DistKind::kBlockCyclic: {
      std::ostringstream os;
      os << "CYCLIC(" << d.block << ")";
      return os.str();
    }
  }
  return "?";
}

}  // namespace pfm
