#include "layout/array_layout.h"

#include <stdexcept>

#include "util/arith.h"

namespace pfm {

std::int64_t GridDesc::total() const {
  std::int64_t t = 1;
  for (std::int64_t d : dims) {
    if (d < 1) throw std::invalid_argument("GridDesc: dimension < 1");
    t = mul_checked(t, d);
  }
  return t;
}

std::vector<std::int64_t> GridDesc::coords(std::int64_t proc) const {
  if (proc < 0 || proc >= total())
    throw std::out_of_range("GridDesc::coords: processor out of range");
  std::vector<std::int64_t> c(dims.size());
  for (std::size_t d = dims.size(); d-- > 0;) {
    c[d] = proc % dims[d];
    proc /= dims[d];
  }
  return c;
}

std::int64_t array_bytes(const ArrayDesc& a) {
  std::int64_t t = a.elem_size;
  if (t < 1) throw std::invalid_argument("ArrayDesc: elem_size < 1");
  for (std::int64_t e : a.extents) {
    if (e < 1) throw std::invalid_argument("ArrayDesc: extent < 1");
    t = mul_checked(t, e);
  }
  return t;
}

std::int64_t dim_stride(const ArrayDesc& a, std::size_t d) {
  if (d >= a.extents.size()) throw std::out_of_range("dim_stride: bad dimension");
  std::int64_t s = a.elem_size;
  for (std::size_t e = d + 1; e < a.extents.size(); ++e)
    s = mul_checked(s, a.extents[e]);
  return s;
}

namespace {

/// Scales a FALLS set from element units of one dimension to bytes: indices
/// multiply by the dimension's stride, and block ends become inclusive byte
/// ends of whole sub-rows.
FallsSet scale_set(const FallsSet& set, std::int64_t stride) {
  FallsSet out;
  out.reserve(set.size());
  for (const Falls& f : set) {
    Falls g;
    g.l = f.l * stride;
    g.r = (f.r + 1) * stride - 1;
    g.s = f.s * stride;
    g.n = f.n;
    out.push_back(std::move(g));
  }
  return out;
}

/// True when the set is one block covering the whole dimension.
bool covers_dimension(const FallsSet& set, std::int64_t extent) {
  return set.size() == 1 && set[0].leaf() && set[0].l == 0 && set[0].n == 1 &&
         set[0].block_len() == extent;
}

}  // namespace

FallsSet layout_falls(const ArrayDesc& a, std::span<const Dist> dists,
                      const GridDesc& grid, std::int64_t proc) {
  const std::size_t rank = a.extents.size();
  if (dists.size() != rank || grid.dims.size() != rank)
    throw std::invalid_argument("layout_falls: rank mismatch");
  if (rank == 0) throw std::invalid_argument("layout_falls: rank 0 array");
  const std::vector<std::int64_t> c = grid.coords(proc);

  // Build from the innermost dimension outwards. `current` is the byte
  // pattern owned within one full "row" of the dimensions processed so far
  // (extent suffix_bytes); `full` records whether it is all of it, in which
  // case outer blocks stay contiguous leaves.
  FallsSet current;
  bool full = true;
  std::int64_t suffix_bytes = a.elem_size;
  for (std::size_t d = rank; d-- > 0;) {
    const std::int64_t stride = suffix_bytes;  // == dim_stride(a, d)
    FallsSet dim_set = dist_falls(dists[d], a.extents[d], grid.dims[d], c[d]);
    if (dim_set.empty()) return {};  // this processor owns nothing
    const bool dim_full = covers_dimension(dim_set, a.extents[d]);
    suffix_bytes = mul_checked(stride, a.extents[d]);
    if (dim_full && full) continue;  // whole level owned: nothing to refine
    FallsSet scaled = scale_set(dim_set, stride);
    if (full) {
      // Everything below is contiguous: this level's blocks are plain byte
      // ranges.
      current = std::move(scaled);
      full = false;
      continue;
    }
    // Nest (for a full level above a partial inner this replicates the inner
    // pattern across the whole dimension), replicating the inner pattern
    // across every index this level's blocks span.
    for (Falls& f : scaled) {
      const std::int64_t k = f.block_len() / stride;  // indices per block
      if (k == 1) {
        f.inner = current;
      } else {
        f.inner = {make_nested(0, stride - 1, stride, k, current)};
      }
    }
    current = std::move(scaled);
  }
  if (full) {
    // The processor owns the entire array: one contiguous block.
    return {make_falls(0, suffix_bytes - 1, suffix_bytes, 1)};
  }
  return current;
}

std::vector<FallsSet> layout_all(const ArrayDesc& a, std::span<const Dist> dists,
                                 const GridDesc& grid) {
  std::vector<FallsSet> out;
  const std::int64_t p = grid.total();
  out.reserve(static_cast<std::size_t>(p));
  for (std::int64_t i = 0; i < p; ++i) out.push_back(layout_falls(a, dists, grid, i));
  return out;
}

std::int64_t dist_owner(const Dist& d, std::int64_t extent, std::int64_t procs,
                        std::int64_t idx) {
  if (idx < 0 || idx >= extent) throw std::out_of_range("dist_owner: bad index");
  switch (d.kind) {
    case DistKind::kNone:
      return 0;
    case DistKind::kBlock:
      return idx / div_ceil(extent, procs);
    case DistKind::kCyclic:
      return idx % procs;
    case DistKind::kBlockCyclic:
      return (idx / d.block) % procs;
  }
  throw std::logic_error("dist_owner: bad DistKind");
}

std::int64_t layout_owner(const ArrayDesc& a, std::span<const Dist> dists,
                          const GridDesc& grid, std::int64_t offset) {
  if (offset < 0 || offset >= array_bytes(a))
    throw std::out_of_range("layout_owner: offset outside the array");
  std::int64_t proc = 0;
  std::int64_t rem = offset / a.elem_size;
  // Decompose the element index into per-dimension indices (row-major).
  std::vector<std::int64_t> idx(a.extents.size());
  for (std::size_t d = a.extents.size(); d-- > 0;) {
    idx[d] = rem % a.extents[d];
    rem /= a.extents[d];
  }
  for (std::size_t d = 0; d < a.extents.size(); ++d) {
    const std::int64_t owner =
        dist_owner(dists[d], a.extents[d], grid.dims[d], idx[d]);
    proc = proc * grid.dims[d] + owner;
  }
  return proc;
}

}  // namespace pfm
