#include "layout/vesta.h"

#include <stdexcept>

#include "layout/array_layout.h"

namespace pfm {

void validate_vesta(const VestaFile& f, const VestaPartition& p) {
  if (f.cells < 1 || f.bsu < 1 || f.records < 1)
    throw std::invalid_argument("Vesta: bad file shape");
  if (p.vbs < 1 || p.vn < 1 || p.hbs < 1 || p.hn < 1)
    throw std::invalid_argument("Vesta: bad partition parameters");
  if (p.vbs * p.vn > f.cells)
    throw std::invalid_argument("Vesta: vertical groups exceed the cells");
  if (p.hbs * p.hn > f.records)
    throw std::invalid_argument("Vesta: horizontal groups exceed the records");
}

namespace {

/// Vesta's two axes are block-cyclic distributions over the record and cell
/// dimensions of the [records][cells] x bsu array.
ArrayDesc vesta_array(const VestaFile& f) {
  return ArrayDesc{{f.records, f.cells}, f.bsu};
}

}  // namespace

FallsSet vesta_falls(const VestaFile& f, const VestaPartition& p,
                     std::int64_t vi, std::int64_t hj) {
  validate_vesta(f, p);
  if (vi < 0 || vi >= p.vn || hj < 0 || hj >= p.hn)
    throw std::out_of_range("vesta_falls: sub-partition index out of range");
  const Dist dists[2] = {Dist::block_cyclic(p.hbs), Dist::block_cyclic(p.vbs)};
  const GridDesc grid{{p.hn, p.vn}};
  // layout_falls linearizes grid coordinates row-major as (h, v).
  return layout_falls(vesta_array(f), dists, grid, hj * p.vn + vi);
}

std::vector<FallsSet> vesta_all(const VestaFile& f, const VestaPartition& p) {
  std::vector<FallsSet> out;
  out.reserve(static_cast<std::size_t>(p.vn * p.hn));
  for (std::int64_t vi = 0; vi < p.vn; ++vi)
    for (std::int64_t hj = 0; hj < p.hn; ++hj)
      out.push_back(vesta_falls(f, p, vi, hj));
  return out;
}

std::int64_t vesta_owner(const VestaFile& f, const VestaPartition& p,
                         std::int64_t offset) {
  validate_vesta(f, p);
  if (offset < 0 || offset >= f.bytes())
    throw std::out_of_range("vesta_owner: offset outside the file");
  const std::int64_t unit = offset / f.bsu;
  const std::int64_t record = unit / f.cells;
  const std::int64_t cell = unit % f.cells;
  const std::int64_t vi = (cell / p.vbs) % p.vn;
  const std::int64_t hj = (record / p.hbs) % p.hn;
  return vi * p.hn + hj;
}

}  // namespace pfm
