#include "mpiio/mpiio.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "falls/set_ops.h"
#include "util/arith.h"

namespace pfm {

void MemoryFile::write_at(std::int64_t offset, std::span<const std::byte> data) {
  if (offset < 0) throw std::invalid_argument("MemoryFile::write_at: bad offset");
  const std::size_t end = static_cast<std::size_t>(offset) + data.size();
  if (end > data_.size()) data_.resize(end);
  std::memcpy(data_.data() + offset, data.data(), data.size());
}

void MemoryFile::read_at(std::int64_t offset, std::span<std::byte> out) const {
  if (offset < 0 ||
      static_cast<std::size_t>(offset) + out.size() > data_.size())
    throw std::out_of_range("MemoryFile::read_at: range beyond file");
  std::memcpy(out.data(), data_.data() + offset, out.size());
}

MpiioView::MpiioView(std::shared_ptr<LinearFile> file, std::int64_t disp,
                     std::int64_t etype_size, const Datatype& filetype)
    : file_(std::move(file)),
      disp_(disp),
      etype_size_(etype_size),
      tile_extent_(filetype.extent()),
      falls_(filetype.falls()),
      idx_(falls_, tile_extent_) {
  if (!file_) throw std::invalid_argument("MpiioView: null file");
  if (disp_ < 0) throw std::invalid_argument("MpiioView: negative displacement");
  if (etype_size_ < 1) throw std::invalid_argument("MpiioView: etype size < 1");
  if (filetype.size() % etype_size_ != 0)
    throw std::invalid_argument(
        "MpiioView: filetype must consist of whole etypes");
}

std::int64_t MpiioView::file_offset_of(std::int64_t view_byte) const {
  const ElementRef ref{&falls_, disp_, tile_extent_};
  return map_to_file(ref, view_byte);
}

std::int64_t MpiioView::check_access(std::int64_t offset, std::int64_t bytes) const {
  if (offset < 0) throw std::invalid_argument("MpiioView: negative offset");
  if (bytes % etype_size_ != 0)
    throw std::invalid_argument("MpiioView: access must be whole etypes");
  return offset * etype_size_;
}

template <typename Fn>
void MpiioView::for_each_file_chunk(std::int64_t first_rank, std::int64_t count,
                                    Fn&& fn) const {
  // Walk the visible bytes by rank: every chunk is the remainder of the
  // filetype run the current rank falls into, so the file I/O is one
  // operation per contiguous region — the segment-wise access the paper's
  // representation exists to enable.
  const auto& runs = idx_.runs();
  std::int64_t rank = first_rank;
  std::int64_t remaining = count;
  while (remaining > 0) {
    const std::int64_t file_off = file_offset_of(rank);
    const std::int64_t phase = mod_floor(file_off - disp_, tile_extent_);
    // The run containing `phase` (ranks are member bytes, so it exists).
    const auto it = std::upper_bound(
        runs.begin(), runs.end(), phase,
        [](std::int64_t p, const LineSegment& r) { return p < r.l; });
    const LineSegment& run = *std::prev(it);
    const std::int64_t len = std::min(remaining, run.r - phase + 1);
    fn(file_off, len);
    rank += len;
    remaining -= len;
  }
}

void MpiioView::write_at(std::int64_t offset, std::span<const std::byte> data) {
  const std::int64_t v = check_access(offset, static_cast<std::int64_t>(data.size()));
  if (data.empty()) return;
  std::int64_t consumed = 0;
  for_each_file_chunk(v, static_cast<std::int64_t>(data.size()),
                      [&](std::int64_t file_off, std::int64_t len) {
                        file_->write_at(file_off,
                                        data.subspan(static_cast<std::size_t>(consumed),
                                                     static_cast<std::size_t>(len)));
                        consumed += len;
                      });
}

void MpiioView::read_at(std::int64_t offset, std::span<std::byte> out) const {
  const std::int64_t v = check_access(offset, static_cast<std::int64_t>(out.size()));
  if (out.empty()) return;
  std::int64_t produced = 0;
  for_each_file_chunk(v, static_cast<std::int64_t>(out.size()),
                      [&](std::int64_t file_off, std::int64_t len) {
                        file_->read_at(file_off,
                                       out.subspan(static_cast<std::size_t>(produced),
                                                   static_cast<std::size_t>(len)));
                        produced += len;
                      });
}

}  // namespace pfm
