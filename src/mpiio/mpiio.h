// An MPI-IO-style file interface implemented on the paper's file model
// (paper section 3: "MPI-IO library file model can be also implemented
// using our file model and mappings").
//
// MPI-IO semantics reproduced here: a process sets a view with
// (displacement, etype, filetype); the filetype — a derived datatype whose
// selection pattern tiles the file from the displacement — defines the
// visible bytes, and file offsets are counted in etypes within that view.
// Internally the filetype lowers to a nested FALLS partition element and
// every access runs through the library's MAP / gather / scatter machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "datatype/datatype.h"
#include "mapping/map.h"
#include "redist/gather_scatter.h"
#include "util/buffer.h"

namespace pfm {

/// A linear byte file an MpiioView reads and writes. The library ships a
/// memory-backed implementation; Clusterfile or a POSIX file can implement
/// the same interface.
class LinearFile {
 public:
  virtual ~LinearFile() = default;
  virtual void write_at(std::int64_t offset, std::span<const std::byte> data) = 0;
  virtual void read_at(std::int64_t offset, std::span<std::byte> out) const = 0;
  virtual std::int64_t size() const = 0;
};

/// Grow-on-write in-memory LinearFile.
class MemoryFile final : public LinearFile {
 public:
  void write_at(std::int64_t offset, std::span<const std::byte> data) override;
  void read_at(std::int64_t offset, std::span<std::byte> out) const override;
  std::int64_t size() const override { return static_cast<std::int64_t>(data_.size()); }
  const Buffer& bytes() const { return data_; }

 private:
  Buffer data_;
};

/// MPI_File_set_view / read_at / write_at semantics over a LinearFile.
class MpiioView {
 public:
  /// disp: absolute byte displacement; etype_size: the elementary type's
  /// size in bytes; filetype: the access pattern (its size must be a
  /// multiple of etype_size — MPI requires filetypes to be built from
  /// whole etypes).
  MpiioView(std::shared_ptr<LinearFile> file, std::int64_t disp,
            std::int64_t etype_size, const Datatype& filetype);

  std::int64_t etype_size() const { return etype_size_; }
  /// Visible etypes per filetype tile.
  std::int64_t etypes_per_tile() const { return idx_.size() / etype_size_; }

  /// Writes `data` (a whole number of etypes) at view offset `offset`
  /// (counted in etypes, as MPI does). Non-contiguous filetype regions are
  /// scattered to their file positions.
  void write_at(std::int64_t offset, std::span<const std::byte> data);

  /// Reads |out| bytes (a whole number of etypes) from view offset
  /// `offset` (in etypes).
  void read_at(std::int64_t offset, std::span<std::byte> out) const;

  /// The file-linear offset holding view byte `view_byte` — the mapping
  /// function MAP^-1 of paper section 6 (exposed for tests).
  std::int64_t file_offset_of(std::int64_t view_byte) const;

 private:
  /// First view byte for an access of `bytes` at etype offset `offset`;
  /// validates etype alignment.
  std::int64_t check_access(std::int64_t offset, std::int64_t bytes) const;

  /// Invokes fn(file_offset, length) for every contiguous file region of
  /// the `count` visible bytes starting at view rank `first_rank`.
  template <typename Fn>
  void for_each_file_chunk(std::int64_t first_rank, std::int64_t count,
                           Fn&& fn) const;

  std::shared_ptr<LinearFile> file_;
  std::int64_t disp_;
  std::int64_t etype_size_;
  std::int64_t tile_extent_;
  FallsSet falls_;
  IndexSet idx_;
};

}  // namespace pfm
