// Two-phase collective I/O on top of Clusterfile views.
//
// The paper's related work (section 2) credits Panda with server-directed
// collective I/O and notes the file model supports "any combination of
// redistributions: disk-disk, disk-memory, memory-disk, memory-memory"
// (section 3). Two-phase collective writing is the canonical composition:
//
//   phase 1 (memory-memory): processes holding view data exchange it into a
//     *conforming* distribution — one that matches the physical partition —
//     using the redistribution algorithm of section 7;
//   phase 2 (memory-disk): each aggregator writes its now-contiguous piece
//     through a view identical to its subfile, hitting the contiguous fast
//     path (the section 6.2 optimality case: every view byte maps 1:1).
//
// Independent I/O (each process writing straight through its own view) is
// provided as the baseline; when logical and physical partitions mismatch
// it fragments into many small server scatters.
#pragma once

#include <cstdint>
#include <vector>

#include "clusterfile/fs.h"
#include "redist/execute.h"

namespace pfm {

struct CollectiveStats {
  RedistStats exchange;        ///< phase-1 data movement (collective only)
  double exchange_us = 0;      ///< phase-1 wall time
  double io_us = 0;            ///< phase-2 (or independent) wall time
  std::int64_t requests = 0;   ///< write requests sent to I/O servers
  std::int64_t bytes = 0;      ///< payload bytes shipped to I/O servers
  /// Reliability outcome summed over every access of the operation (all
  /// zero on a fault-free run).
  ReliabilityCounters rel;
};

/// Collectively writes a file of `file_size` bytes. view_data[k] holds the
/// bytes of logical element k (exactly logical.element_bytes(k, file_size)
/// bytes). Views/aggregation are driven from the cluster's compute nodes
/// round-robin.
CollectiveStats collective_write(Clusterfile& fs,
                                 const PartitioningPattern& logical,
                                 const std::vector<Buffer>& view_data,
                                 std::int64_t file_size);

/// The baseline: every logical element is written independently through its
/// own view.
CollectiveStats independent_write(Clusterfile& fs,
                                  const PartitioningPattern& logical,
                                  const std::vector<Buffer>& view_data,
                                  std::int64_t file_size);

/// Collective read: aggregators read conforming pieces through matching
/// views (phase 1), then redistribute memory-memory into the logical
/// partition (phase 2). Returns the per-view buffers.
CollectiveStats collective_read(Clusterfile& fs,
                                const PartitioningPattern& logical,
                                std::vector<Buffer>& view_data,
                                std::int64_t file_size);

}  // namespace pfm
