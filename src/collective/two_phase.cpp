#include "collective/two_phase.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace pfm {

namespace {

void check_inputs(const Clusterfile& fs, const PartitioningPattern& logical,
                  const std::vector<Buffer>& view_data, std::int64_t file_size) {
  if (view_data.size() != logical.element_count())
    throw std::invalid_argument("collective I/O: view buffer count mismatch");
  for (std::size_t k = 0; k < view_data.size(); ++k)
    if (static_cast<std::int64_t>(view_data[k].size()) !=
        logical.element_bytes(k, file_size))
      throw std::invalid_argument("collective I/O: view buffer size mismatch");
  if (logical.displacement() != fs.physical().displacement())
    throw std::invalid_argument("collective I/O: displacement mismatch");
}

/// Runs fn(i) for every element index with a non-empty buffer, fanned out
/// over the compute nodes: indices are grouped by the client that serves
/// them (i mod compute_nodes) and the groups run in parallel on the shared
/// pool — a client is single-threaded, but distinct clients are independent,
/// exactly like the paper's per-node phases. Returns summed request/byte
/// counts from fn.
struct IoCounts {
  std::int64_t requests = 0;
  std::int64_t bytes = 0;
  ReliabilityCounters rel;
};
template <typename Fn>
IoCounts for_each_element_by_client(
    Clusterfile& fs, std::size_t element_count,
    const std::function<bool(std::size_t)>& skip, const Fn& fn) {
  const std::size_t clients =
      static_cast<std::size_t>(std::max(1, fs.compute_nodes()));
  std::vector<std::vector<std::size_t>> by_client(clients);
  for (std::size_t i = 0; i < element_count; ++i)
    if (!skip(i)) by_client[i % clients].push_back(i);
  std::vector<IoCounts> acc(clients);
  ThreadPool::shared().parallel_for(clients, [&](std::size_t c) {
    for (const std::size_t i : by_client[c]) {
      const IoCounts one = fn(static_cast<int>(c), i);
      acc[c].requests += one.requests;
      acc[c].bytes += one.bytes;
      acc[c].rel += one.rel;
    }
  });
  IoCounts total;
  for (const IoCounts& a : acc) {
    total.requests += a.requests;
    total.bytes += a.bytes;
    total.rel += a.rel;
  }
  return total;
}

}  // namespace

CollectiveStats collective_write(Clusterfile& fs,
                                 const PartitioningPattern& logical,
                                 const std::vector<Buffer>& view_data,
                                 std::int64_t file_size) {
  check_inputs(fs, logical, view_data, file_size);
  const PartitioningPattern& phys = fs.physical();
  CollectiveStats out;

  // Phase 1: exchange into the conforming (physical) distribution.
  std::vector<Buffer> agg;
  {
    Timer t;
    out.exchange = redistribute(logical, phys, view_data, agg, file_size);
    out.exchange_us = t.elapsed_us();
  }

  // Phase 2: every aggregator writes its piece through a view identical to
  // its subfile — the optimal-overlap case, one contiguous request each —
  // with the aggregators running concurrently, one task per client.
  {
    Timer t;
    const IoCounts io = for_each_element_by_client(
        fs, phys.element_count(), [&](std::size_t i) { return agg[i].empty(); },
        [&](int c, std::size_t i) {
          auto& client = fs.client(c);
          const std::int64_t vid = client.set_view(phys.element(i), phys.size());
          const auto w = client.write(
              vid, 0, static_cast<std::int64_t>(agg[i].size()) - 1, agg[i]);
          return IoCounts{w.messages, w.bytes, w.rel};
        });
    out.requests += io.requests;
    out.bytes += io.bytes;
    out.rel += io.rel;
    out.io_us = t.elapsed_us();
  }
  return out;
}

CollectiveStats independent_write(Clusterfile& fs,
                                  const PartitioningPattern& logical,
                                  const std::vector<Buffer>& view_data,
                                  std::int64_t file_size) {
  check_inputs(fs, logical, view_data, file_size);
  CollectiveStats out;
  Timer t;
  for (std::size_t k = 0; k < logical.element_count(); ++k) {
    if (view_data[k].empty()) continue;
    auto& client = fs.client(static_cast<int>(k) % fs.compute_nodes());
    const std::int64_t vid = client.set_view(logical.element(k), logical.size());
    const auto w = client.write(
        vid, 0, static_cast<std::int64_t>(view_data[k].size()) - 1, view_data[k]);
    out.requests += w.messages;
    out.bytes += w.bytes;
    out.rel += w.rel;
  }
  out.io_us = t.elapsed_us();
  return out;
}

CollectiveStats collective_read(Clusterfile& fs,
                                const PartitioningPattern& logical,
                                std::vector<Buffer>& view_data,
                                std::int64_t file_size) {
  const PartitioningPattern& phys = fs.physical();
  CollectiveStats out;

  // Phase 1: aggregators read conforming pieces (contiguous fast path),
  // concurrently — one task per client, as in the write direction.
  std::vector<Buffer> agg(phys.element_count());
  {
    Timer t;
    for (std::size_t i = 0; i < phys.element_count(); ++i)
      agg[i].resize(static_cast<std::size_t>(phys.element_bytes(i, file_size)));
    const IoCounts io = for_each_element_by_client(
        fs, phys.element_count(), [&](std::size_t i) { return agg[i].empty(); },
        [&](int c, std::size_t i) {
          auto& client = fs.client(c);
          const std::int64_t vid = client.set_view(phys.element(i), phys.size());
          const auto r = client.read(
              vid, 0, static_cast<std::int64_t>(agg[i].size()) - 1, agg[i]);
          return IoCounts{r.messages, r.bytes, r.rel};
        });
    out.requests += io.requests;
    out.bytes += io.bytes;
    out.rel += io.rel;
    out.io_us = t.elapsed_us();
  }

  // Phase 2: redistribute memory-memory into the logical partition.
  {
    Timer t;
    out.exchange = redistribute(phys, logical, agg, view_data, file_size);
    out.exchange_us = t.elapsed_us();
  }
  return out;
}

}  // namespace pfm
