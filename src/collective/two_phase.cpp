#include "collective/two_phase.h"

#include <stdexcept>

#include "util/timer.h"

namespace pfm {

namespace {

void check_inputs(const Clusterfile& fs, const PartitioningPattern& logical,
                  const std::vector<Buffer>& view_data, std::int64_t file_size) {
  if (view_data.size() != logical.element_count())
    throw std::invalid_argument("collective I/O: view buffer count mismatch");
  for (std::size_t k = 0; k < view_data.size(); ++k)
    if (static_cast<std::int64_t>(view_data[k].size()) !=
        logical.element_bytes(k, file_size))
      throw std::invalid_argument("collective I/O: view buffer size mismatch");
  if (logical.displacement() != fs.physical().displacement())
    throw std::invalid_argument("collective I/O: displacement mismatch");
}

}  // namespace

CollectiveStats collective_write(Clusterfile& fs,
                                 const PartitioningPattern& logical,
                                 const std::vector<Buffer>& view_data,
                                 std::int64_t file_size) {
  check_inputs(fs, logical, view_data, file_size);
  const PartitioningPattern& phys = fs.physical();
  CollectiveStats out;

  // Phase 1: exchange into the conforming (physical) distribution.
  std::vector<Buffer> agg;
  {
    Timer t;
    out.exchange = redistribute(logical, phys, view_data, agg, file_size);
    out.exchange_us = t.elapsed_us();
  }

  // Phase 2: every aggregator writes its piece through a view identical to
  // its subfile — the optimal-overlap case, one contiguous request each.
  {
    Timer t;
    for (std::size_t i = 0; i < phys.element_count(); ++i) {
      if (agg[i].empty()) continue;
      auto& client = fs.client(static_cast<int>(i) % fs.compute_nodes());
      const std::int64_t vid = client.set_view(phys.element(i), phys.size());
      const auto w = client.write(
          vid, 0, static_cast<std::int64_t>(agg[i].size()) - 1, agg[i]);
      out.requests += w.messages;
      out.bytes += w.bytes;
    }
    out.io_us = t.elapsed_us();
  }
  return out;
}

CollectiveStats independent_write(Clusterfile& fs,
                                  const PartitioningPattern& logical,
                                  const std::vector<Buffer>& view_data,
                                  std::int64_t file_size) {
  check_inputs(fs, logical, view_data, file_size);
  CollectiveStats out;
  Timer t;
  for (std::size_t k = 0; k < logical.element_count(); ++k) {
    if (view_data[k].empty()) continue;
    auto& client = fs.client(static_cast<int>(k) % fs.compute_nodes());
    const std::int64_t vid = client.set_view(logical.element(k), logical.size());
    const auto w = client.write(
        vid, 0, static_cast<std::int64_t>(view_data[k].size()) - 1, view_data[k]);
    out.requests += w.messages;
    out.bytes += w.bytes;
  }
  out.io_us = t.elapsed_us();
  return out;
}

CollectiveStats collective_read(Clusterfile& fs,
                                const PartitioningPattern& logical,
                                std::vector<Buffer>& view_data,
                                std::int64_t file_size) {
  const PartitioningPattern& phys = fs.physical();
  CollectiveStats out;

  // Phase 1: aggregators read conforming pieces (contiguous fast path).
  std::vector<Buffer> agg(phys.element_count());
  {
    Timer t;
    for (std::size_t i = 0; i < phys.element_count(); ++i) {
      agg[i].resize(static_cast<std::size_t>(phys.element_bytes(i, file_size)));
      if (agg[i].empty()) continue;
      auto& client = fs.client(static_cast<int>(i) % fs.compute_nodes());
      const std::int64_t vid = client.set_view(phys.element(i), phys.size());
      const auto r = client.read(
          vid, 0, static_cast<std::int64_t>(agg[i].size()) - 1, agg[i]);
      out.requests += r.messages;
      out.bytes += r.bytes;
    }
    out.io_us = t.elapsed_us();
  }

  // Phase 2: redistribute memory-memory into the logical partition.
  {
    Timer t;
    out.exchange = redistribute(phys, logical, agg, view_data, file_size);
    out.exchange_us = t.elapsed_us();
  }
  return out;
}

}  // namespace pfm
