#include "falls/compress.h"

#include <algorithm>

namespace pfm {

FallsSet compress_runs(std::span<const LineSegment> runs) {
  FallsSet out;
  std::size_t i = 0;
  while (i < runs.size()) {
    const std::int64_t len = runs[i].size();
    // Try to extend an arithmetic progression of equal-length runs.
    std::int64_t count = 1;
    std::int64_t stride = 1;
    if (i + 1 < runs.size() && runs[i + 1].size() == len) {
      stride = runs[i + 1].l - runs[i].l;
      std::size_t j = i + 1;
      while (j < runs.size() && runs[j].size() == len &&
             runs[j].l - runs[j - 1].l == stride) {
        ++count;
        ++j;
      }
    }
    if (count >= 2) {
      out.push_back(make_falls(runs[i].l, runs[i].r, stride, count));
      i += static_cast<std::size_t>(count);
    } else {
      out.push_back(from_segment(runs[i]));
      i += 1;
    }
  }
  return out;
}

namespace {

/// True when `set` equals `prefix` repeated `reps` times with period
/// `period` (structural comparison on flat FALLS).
bool is_repetition(const FallsSet& set, std::size_t prefix_len,
                   std::int64_t period, std::size_t reps) {
  for (std::size_t rep = 1; rep < reps; ++rep) {
    for (std::size_t k = 0; k < prefix_len; ++k) {
      const Falls& a = set[k];
      const Falls& b = set[rep * prefix_len + k];
      if (b.l != a.l + static_cast<std::int64_t>(rep) * period ||
          b.r != a.r + static_cast<std::int64_t>(rep) * period || b.s != a.s ||
          b.n != a.n || b.inner != a.inner)
        return false;
    }
  }
  return true;
}

}  // namespace

FallsSet compress_runs_nested(std::span<const LineSegment> runs) {
  FallsSet flat = compress_runs(runs);
  // Try prefix lengths that divide the list size, shortest first, so we find
  // the finest period (maximum number of outer repetitions).
  const std::size_t m = flat.size();
  for (std::size_t plen = 1; plen <= m / 2; ++plen) {
    if (m % plen != 0) continue;
    const std::size_t reps = m / plen;
    const std::int64_t period = flat[plen].l - flat[0].l;
    if (period <= 0) continue;
    if (!is_repetition(flat, plen, period, reps)) continue;
    // Rebase the prefix to the period origin so the inner FALLS are relative.
    const std::int64_t origin = flat[0].l;
    FallsSet prefix(flat.begin(), flat.begin() + static_cast<std::ptrdiff_t>(plen));
    FallsSet rebased = shift_set(prefix, -origin);
    const std::int64_t span = set_extent(rebased);
    if (span > period) continue;  // members of one period interleave: keep flat
    // The outer block covers only the prefix's span (not the whole period),
    // so the wrapped form never extends past the last member byte + 1.
    Falls outer = make_nested(origin, origin + span - 1, period,
                              static_cast<std::int64_t>(reps), std::move(rebased));
    return FallsSet{std::move(outer)};
  }
  return flat;
}

FallsSet recompress(const FallsSet& set) {
  const auto runs = set_runs(set);
  return compress_runs_nested(runs);
}

std::int64_t node_count(const FallsSet& set) {
  std::int64_t total = 0;
  for (const Falls& f : set) total += 1 + node_count(f.inner);
  return total;
}

}  // namespace pfm
