#include "falls/falls.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/arith.h"
#include "util/check.h"

namespace pfm {

Falls make_falls(std::int64_t l, std::int64_t r, std::int64_t s, std::int64_t n) {
  Falls f{l, r, s, n, {}};
  if constexpr (kDcheckEnabled) validate_falls(f);
  return f;
}

Falls make_nested(std::int64_t l, std::int64_t r, std::int64_t s, std::int64_t n,
                  FallsSet inner) {
  Falls f{l, r, s, n, std::move(inner)};
  if constexpr (kDcheckEnabled) validate_falls(f);
  return f;
}

Falls from_segment(const LineSegment& seg) {
  Falls f{seg.l, seg.r, seg.r - seg.l + 1, 1, {}};
  if constexpr (kDcheckEnabled) validate_falls(f);
  return f;
}

std::int64_t falls_size(const Falls& f) {
  const std::int64_t per_block = f.leaf() ? f.block_len() : set_size(f.inner);
  return per_block * f.n;
}

std::int64_t set_size(const FallsSet& set) {
  std::int64_t total = 0;
  for (const Falls& f : set) total += falls_size(f);
  return total;
}

std::int64_t falls_extent(const Falls& f) {
  return f.l + (f.n - 1) * f.s + f.block_len();
}

std::int64_t set_extent(const FallsSet& set) {
  std::int64_t e = 0;
  for (const Falls& f : set) e = std::max(e, falls_extent(f));
  return e;
}

int falls_height(const Falls& f) {
  return 1 + set_height(f.inner);
}

int set_height(const FallsSet& set) {
  int h = 0;
  for (const Falls& f : set) h = std::max(h, falls_height(f));
  return h;
}

namespace {

[[noreturn]] void fail(const Falls& f, const char* what) {
  std::ostringstream os;
  os << "invalid FALLS (" << f.l << "," << f.r << "," << f.s << "," << f.n
     << "): " << what;
  throw std::invalid_argument(os.str());
}

}  // namespace

void validate_falls(const Falls& f) {
  if (f.l < 0) fail(f, "negative left index");
  if (f.l > f.r) fail(f, "l > r");
  if (f.n < 1) fail(f, "n < 1");
  if (f.s < 1) fail(f, "s < 1");
  if (f.n > 1 && f.s < f.block_len()) fail(f, "blocks overlap (s < r-l+1)");
  // The extent l + (n-1)*s + (r-l+1) must be representable: a hostile
  // serialized FALLS with huge l/s/n would otherwise wrap falls_extent and
  // defeat every downstream bounds check.
  try {
    add_checked(affine_checked(f.l, f.n - 1, f.s), f.block_len());
  } catch (const std::overflow_error&) {
    fail(f, "extent overflows int64");
  }
  if (!f.inner.empty()) {
    validate_falls_set(f.inner);
    if (set_extent(f.inner) > f.block_len())
      fail(f, "inner FALLS exceed the outer block");
  }
}

void validate_falls_set(const FallsSet& set) {
  // Members must be sorted by first byte and byte-disjoint. Span-disjoint
  // members (the common case for hand-written patterns) satisfy that
  // trivially; intersection and projection results legitimately interleave
  // spans with a common stride, so on span overlap fall back to an exact
  // run-level disjointness check.
  std::int64_t prev_end = 0;  // one past the previous member's span
  std::int64_t prev_l = 0;
  bool first = true;
  bool interleaved = false;
  for (const Falls& f : set) {
    validate_falls(f);
    if (!first && f.l <= prev_l) {
      std::ostringstream os;
      os << "FALLS set members overlap or are unsorted near l=" << f.l;
      throw std::invalid_argument(os.str());
    }
    if (!first && f.l < prev_end) interleaved = true;
    prev_end = std::max(prev_end, falls_extent(f));
    prev_l = f.l;
    first = false;
  }
  if (!interleaved) return;
  std::vector<std::pair<std::int64_t, std::int64_t>> runs;
  for (const Falls& f : set)
    for_each_run(f, [&](std::int64_t a, std::int64_t b) { runs.emplace_back(a, b); });
  std::sort(runs.begin(), runs.end());
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].first <= runs[i - 1].second) {
      std::ostringstream os;
      os << "FALLS set members overlap near byte " << runs[i].first;
      throw std::invalid_argument(os.str());
    }
  }
}

void for_each_run(const Falls& f,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  for (std::int64_t k = 0; k < f.n; ++k) {
    const std::int64_t base = f.l + k * f.s;
    if (f.leaf()) {
      fn(base, base + f.block_len() - 1);
    } else {
      for (const Falls& g : f.inner)
        for_each_run(g, [&](std::int64_t a, std::int64_t b) { fn(base + a, base + b); });
    }
  }
}

void for_each_run(const FallsSet& set,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  for (const Falls& f : set) for_each_run(f, fn);
}

std::vector<std::int64_t> falls_bytes(const Falls& f) {
  std::vector<std::int64_t> out;
  for_each_run(f, [&](std::int64_t a, std::int64_t b) {
    for (std::int64_t x = a; x <= b; ++x) out.push_back(x);
  });
  return out;
}

std::vector<std::int64_t> set_bytes(const FallsSet& set) {
  std::vector<std::int64_t> out;
  for (const Falls& f : set) {
    auto fb = falls_bytes(f);
    out.insert(out.end(), fb.begin(), fb.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<LineSegment> set_runs(const FallsSet& set) {
  std::vector<LineSegment> out;
  for_each_run(set, [&](std::int64_t a, std::int64_t b) { out.push_back({a, b}); });
  std::sort(out.begin(), out.end(),
            [](const LineSegment& x, const LineSegment& y) { return x.l < y.l; });
  // Coalesce runs that touch (distinct set members may produce adjacent runs).
  std::vector<LineSegment> merged;
  for (const LineSegment& seg : out) {
    if (!merged.empty() && seg.l <= merged.back().r + 1)
      merged.back().r = std::max(merged.back().r, seg.r);
    else
      merged.push_back(seg);
  }
  return merged;
}

Falls shift_falls(const Falls& f, std::int64_t delta) {
  Falls out = f;
  out.l += delta;
  out.r += delta;
  if (out.l < 0) throw std::invalid_argument("shift_falls: negative left index");
  return out;
}

FallsSet shift_set(const FallsSet& set, std::int64_t delta) {
  FallsSet out;
  out.reserve(set.size());
  for (const Falls& f : set) out.push_back(shift_falls(f, delta));
  return out;
}

Falls wrap_outer(FallsSet inner, std::int64_t span, std::int64_t count) {
  if (span < 1) throw std::invalid_argument("wrap_outer: span < 1");
  return Falls{0, span - 1, span, count, std::move(inner)};
}

namespace {

Falls equalize_falls(const Falls& f, int height) {
  if (height < 1) throw std::invalid_argument("equalize_height: height too small");
  Falls out = f;
  if (f.leaf()) {
    if (height == 1) return out;
    // Insert a trivial inner FALLS covering the whole block, then recurse.
    Falls trivial = make_falls(0, f.block_len() - 1, f.block_len(), 1);
    out.inner.push_back(equalize_falls(trivial, height - 1));
    return out;
  }
  out.inner = equalize_height(f.inner, height - 1);
  return out;
}

}  // namespace

FallsSet equalize_height(const FallsSet& set, int height) {
  FallsSet out;
  out.reserve(set.size());
  for (const Falls& f : set) out.push_back(equalize_falls(f, height));
  return out;
}

}  // namespace pfm
