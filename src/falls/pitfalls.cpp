#include "falls/pitfalls.h"

#include <sstream>
#include <stdexcept>

namespace pfm {

void validate_pitfalls(const Pitfalls& pf) {
  if (pf.p < 1) throw std::invalid_argument("PITFALLS: p < 1");
  if (pf.d < 0) throw std::invalid_argument("PITFALLS: d < 0");
  // Validating the first processor's expansion validates l/r/s/n and inner
  // structure; other processors are pure shifts of it.
  validate_falls(expand(pf, 0));
}

void validate_pitfalls_set(const PitfallsSet& set) {
  for (const Pitfalls& pf : set) validate_pitfalls(pf);
}

Falls expand(const Pitfalls& pf, std::int64_t proc) {
  if (proc < 0 || proc >= pf.p) {
    std::ostringstream os;
    os << "PITFALLS expand: processor " << proc << " out of [0," << pf.p << ")";
    throw std::out_of_range(os.str());
  }
  Falls f;
  f.l = pf.l + proc * pf.d;
  f.r = pf.r + proc * pf.d;
  f.s = pf.s;
  f.n = pf.n;
  // Inner patterns are relative to the block left index, which already
  // incorporates the processor shift, so inner expansion uses the same proc
  // only when the inner family is itself processor-indexed (d != 0);
  // otherwise proc 0 of the inner family is the pattern for every processor.
  for (const Pitfalls& g : pf.inner)
    f.inner.push_back(expand(g, g.p == 1 ? 0 : proc));
  return f;
}

FallsSet expand(const PitfallsSet& set, std::int64_t proc) {
  FallsSet out;
  out.reserve(set.size());
  for (const Pitfalls& pf : set) out.push_back(expand(pf, pf.p == 1 ? 0 : proc));
  return out;
}

std::int64_t processor_count(const PitfallsSet& set) {
  if (set.empty()) return 0;
  std::int64_t p = 1;
  for (const Pitfalls& pf : set)
    if (pf.p > p) p = pf.p;
  return p;
}

std::vector<FallsSet> expand_all(const PitfallsSet& set) {
  const std::int64_t p = processor_count(set);
  std::vector<FallsSet> out;
  out.reserve(static_cast<std::size_t>(p));
  for (std::int64_t i = 0; i < p; ++i) out.push_back(expand(set, i));
  return out;
}

namespace {

/// True when b is a shifted by delta (same structure, same inner).
bool is_shift(const FallsSet& a, const FallsSet& b, std::int64_t delta) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Falls& x = a[i];
    const Falls& y = b[i];
    if (y.l != x.l + delta || y.r != x.r + delta || y.s != x.s || y.n != x.n ||
        y.inner != x.inner)
      return false;
  }
  return true;
}

Pitfalls to_pitfalls(const Falls& f, std::int64_t d, std::int64_t p) {
  Pitfalls pf;
  pf.l = f.l;
  pf.r = f.r;
  pf.s = f.s;
  pf.n = f.n;
  pf.d = d;
  pf.p = p;
  for (const Falls& g : f.inner) pf.inner.push_back(to_pitfalls(g, 0, 1));
  return pf;
}

}  // namespace

PitfallsSet fold(const std::vector<FallsSet>& per_proc) {
  if (per_proc.empty()) return {};
  const std::int64_t p = static_cast<std::int64_t>(per_proc.size());
  if (p == 1) {
    PitfallsSet out;
    for (const Falls& f : per_proc[0]) out.push_back(to_pitfalls(f, 0, 1));
    return out;
  }
  if (per_proc[0].empty()) return {};
  const std::int64_t d = per_proc[1][0].l - per_proc[0][0].l;
  if (d < 0) return {};
  for (std::int64_t i = 1; i < p; ++i)
    if (!is_shift(per_proc[0], per_proc[static_cast<std::size_t>(i)], i * d))
      return {};
  PitfallsSet out;
  for (const Falls& f : per_proc[0]) out.push_back(to_pitfalls(f, d, p));
  return out;
}

}  // namespace pfm
