// Text serialization of FALLS sets.
//
// Grammar (whitespace-insensitive):
//   set   := '{' [falls (',' falls)*] '}'
//   falls := '(' int ',' int ',' int ',' int [',' set] ')'
//
// This is the same tuple notation the paper uses, so serialized forms can be
// compared directly against the figures. parse_falls_set accepts exactly what
// to_string produces (round-trip guaranteed by tests).
#pragma once

#include <string>
#include <string_view>

#include "falls/falls.h"

namespace pfm {

/// Serializes using the tuple notation of print.h.
std::string serialize(const FallsSet& set);

/// Parses the tuple notation. Throws std::invalid_argument on syntax errors
/// (with position information) and validates the result structurally.
FallsSet parse_falls_set(std::string_view text);

}  // namespace pfm
