#include "falls/serialize.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "falls/print.h"
#include "util/arith.h"
#include "util/check.h"

namespace pfm {

std::string serialize(const FallsSet& set) { return to_string(set); }

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  FallsSet parse_set() {
    // Recursion guard: parse_set and parse_falls are mutually recursive, so
    // hostile input like "{(0,0,1,1,{(0,0,1,1,{..." otherwise turns parser
    // depth into stack depth and crashes with a stack overflow (found by
    // tests/fuzz/fuzz_falls). No legitimate FALLS nests anywhere near this
    // deep — nesting mirrors physical partitioning hierarchy.
    if (++depth_ > kMaxDepth) fail("nesting deeper than 64 levels");
    expect('{');
    FallsSet out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return out;
    }
    out.push_back(parse_falls());
    while (true) {
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        out.push_back(parse_falls());
      } else {
        break;
      }
    }
    expect('}');
    --depth_;
    return out;
  }

  void expect_end() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
  }

 private:
  static constexpr int kMaxDepth = 64;

  Falls parse_falls() {
    expect('(');
    Falls f;
    f.l = parse_int();
    expect(',');
    f.r = parse_int();
    expect(',');
    f.s = parse_int();
    expect(',');
    f.n = parse_int();
    skip_ws();
    if (peek() == ',') {
      ++pos_;
      skip_ws();
      f.inner = parse_set();
    }
    expect(')');
    return f;
  }

  std::int64_t parse_int() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ == start) fail("expected integer");
    std::int64_t v = 0;
    try {
      v = parse_i64(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("integer out of range");
    }
    return v;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "parse_falls_set: " << what << " at position " << pos_;
    throw std::invalid_argument(os.str());
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

FallsSet parse_falls_set(std::string_view text) {
  Parser p(text);
  FallsSet out = p.parse_set();
  p.expect_end();
  try {
    validate_falls_set(out);
  } catch (const ContractViolation& e) {
    // The validator speaks PFM_CHECK (its callers pass trusted, locally
    // built sets, where a violation is a programming error). Here the set
    // came off the wire or a manifest: a structurally invalid FALLS is
    // malformed *input*, and the documented contract of this parser is
    // std::invalid_argument — letting a logic_error escape crashed the
    // format fuzzer (tests/fuzz/fuzz_falls).
    throw std::invalid_argument(std::string("parse_falls_set: ") + e.what());
  } catch (const std::overflow_error& e) {
    // Same story for extent arithmetic that overflows on hostile l/s/n.
    throw std::invalid_argument(std::string("parse_falls_set: ") + e.what());
  }
  return out;
}

}  // namespace pfm
