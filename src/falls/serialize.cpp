#include "falls/serialize.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "falls/print.h"

namespace pfm {

std::string serialize(const FallsSet& set) { return to_string(set); }

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  FallsSet parse_set() {
    expect('{');
    FallsSet out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    out.push_back(parse_falls());
    while (true) {
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        out.push_back(parse_falls());
      } else {
        break;
      }
    }
    expect('}');
    return out;
  }

  void expect_end() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
  }

 private:
  Falls parse_falls() {
    expect('(');
    Falls f;
    f.l = parse_int();
    expect(',');
    f.r = parse_int();
    expect(',');
    f.s = parse_int();
    expect(',');
    f.n = parse_int();
    skip_ws();
    if (peek() == ',') {
      ++pos_;
      skip_ws();
      f.inner = parse_set();
    }
    expect(')');
    return f;
  }

  std::int64_t parse_int() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ == start) fail("expected integer");
    std::int64_t v = 0;
    try {
      v = std::stoll(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("integer out of range");
    }
    return v;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "parse_falls_set: " << what << " at position " << pos_;
    throw std::invalid_argument(os.str());
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

FallsSet parse_falls_set(std::string_view text) {
  Parser p(text);
  FallsSet out = p.parse_set();
  p.expect_end();
  validate_falls_set(out);
  return out;
}

}  // namespace pfm
