#include "falls/print.h"

#include <sstream>

#include "falls/set_ops.h"

namespace pfm {

std::string to_string(const Falls& f) {
  std::ostringstream os;
  os << '(' << f.l << ',' << f.r << ',' << f.s << ',' << f.n;
  if (!f.leaf()) os << ',' << to_string(f.inner);
  os << ')';
  return os.str();
}

std::string to_string(const FallsSet& set) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const Falls& f : set) {
    if (!first) os << ", ";
    os << to_string(f);
    first = false;
  }
  os << '}';
  return os.str();
}

std::string render_bytes(const FallsSet& set, std::int64_t extent) {
  if (extent < 0) extent = set_extent(set);
  std::ostringstream os;
  if (extent <= 64) {
    for (std::int64_t i = 0; i < extent; ++i)
      os << (i % 10) << (i + 1 < extent ? " " : "");
    os << '\n';
  }
  for (std::int64_t i = 0; i < extent; ++i)
    os << (set_contains(set, i) ? 'X' : '.') << (i + 1 < extent ? " " : "");
  os << '\n';
  return os.str();
}

}  // namespace pfm
