// Human-readable rendering of FALLS: tuple notation used in the paper
// ("(l,r,s,n)", nested "(l,r,s,n,{...})") and ASCII byte-ruler diagrams in
// the style of the paper's figures 1-4.
#pragma once

#include <string>

#include "falls/falls.h"

namespace pfm {

/// Tuple notation, e.g. "(3,5,6,5)" or "(0,3,8,2,{(0,0,2,2)})".
std::string to_string(const Falls& f);
/// "{f0, f1, ...}".
std::string to_string(const FallsSet& set);

/// ASCII diagram over [0, extent): a ruler line with byte indices (when
/// extent <= 64) and a mark line with 'X' on member bytes, '.' elsewhere.
std::string render_bytes(const FallsSet& set, std::int64_t extent = -1);

}  // namespace pfm
