#include "falls/set_ops.h"

#include <algorithm>

#include "util/arith.h"

namespace pfm {

bool falls_contains(const Falls& f, std::int64_t x) {
  if (x < f.l) return false;
  const std::int64_t rel = x - f.l;
  const std::int64_t k = rel / f.s;
  if (k >= f.n) return false;
  const std::int64_t within = rel % f.s;
  if (within >= f.block_len()) return false;
  if (f.leaf()) return true;
  return set_contains(f.inner, within);
}

bool set_contains(const FallsSet& set, std::int64_t x) {
  for (const Falls& f : set)
    if (falls_contains(f, x)) return true;
  return false;
}

std::int64_t falls_rank(const Falls& f, std::int64_t x) {
  if (x <= f.l) return 0;
  const std::int64_t rel = x - f.l;
  const std::int64_t per_block = f.leaf() ? f.block_len() : set_size(f.inner);
  const std::int64_t k = std::min(rel / f.s, f.n - 1);
  const std::int64_t within = rel - k * f.s;  // may exceed block_len (gap/tail)
  std::int64_t inside;
  if (f.leaf()) {
    inside = std::clamp<std::int64_t>(within, 0, f.block_len());
  } else {
    inside = set_rank(f.inner, within);
  }
  return k * per_block + inside;
}

std::int64_t set_rank(const FallsSet& set, std::int64_t x) {
  std::int64_t total = 0;
  for (const Falls& f : set) total += falls_rank(f, x);
  return total;
}

bool is_single_run(const FallsSet& set) {
  if (set.empty()) return true;
  return set_runs(set).size() == 1;
}

std::optional<std::int64_t> first_byte(const FallsSet& set) {
  std::optional<std::int64_t> best;
  for_each_run(set, [&](std::int64_t a, std::int64_t) {
    if (!best || a < *best) best = a;
  });
  return best;
}

std::optional<std::int64_t> last_byte(const FallsSet& set) {
  std::optional<std::int64_t> best;
  for_each_run(set, [&](std::int64_t, std::int64_t b) {
    if (!best || b > *best) best = b;
  });
  return best;
}

bool same_byte_set(const FallsSet& a, const FallsSet& b) {
  return set_runs(a) == set_runs(b);
}

bool subset_of(const FallsSet& inner, const FallsSet& outer) {
  const auto runs_in = set_runs(inner);
  const auto runs_out = set_runs(outer);
  std::size_t j = 0;
  for (const LineSegment& run : runs_in) {
    while (j < runs_out.size() && runs_out[j].r < run.l) ++j;
    if (j == runs_out.size() || runs_out[j].l > run.l || runs_out[j].r < run.r)
      return false;
  }
  return true;
}

}  // namespace pfm
