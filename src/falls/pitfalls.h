// PITFALLS: Processor Indexed Tagged FAmilies of Line Segments
// (Ramaswamy & Banerjee), and their nested extension (paper section 4).
//
// A PITFALLS (l, r, s, n, d, p) compactly describes one FALLS per processor:
// processor i in [0, p) owns the FALLS (l + i*d, r + i*d, s, n). Regular
// HPF-style distributions produce identical per-processor patterns shifted
// by a constant, which is exactly what the d ("processor stride") captures.
// A nested PITFALLS carries inner nested PITFALLS relative to each block.
#pragma once

#include <cstdint>
#include <vector>

#include "falls/falls.h"

namespace pfm {

struct Pitfalls;
using PitfallsSet = std::vector<Pitfalls>;

/// Processor-indexed family: processor i gets (l + i*d, r + i*d, s, n) with
/// inner patterns expanded recursively for the same i.
struct Pitfalls {
  std::int64_t l = 0;  ///< first processor's first block left index
  std::int64_t r = 0;  ///< first processor's first block right index
  std::int64_t s = 1;  ///< stride between blocks of one processor
  std::int64_t n = 1;  ///< blocks per processor
  std::int64_t d = 0;  ///< shift between consecutive processors
  std::int64_t p = 1;  ///< number of processors described
  PitfallsSet inner;   ///< nested inner PITFALLS, relative to block left index

  bool leaf() const { return inner.empty(); }
  bool operator==(const Pitfalls&) const = default;
};

/// Structural validation (mirrors validate_falls, plus d/p constraints).
void validate_pitfalls(const Pitfalls& pf);
void validate_pitfalls_set(const PitfallsSet& set);

/// The nested FALLS of processor `proc` described by pf / set.
Falls expand(const Pitfalls& pf, std::int64_t proc);
FallsSet expand(const PitfallsSet& set, std::int64_t proc);

/// All processors' FALLS sets: result[i] is processor i's set. All members
/// of `set` must agree on p.
std::vector<FallsSet> expand_all(const PitfallsSet& set);

/// Number of processors (p of the first member; validated equal across
/// members). 0 for an empty set.
std::int64_t processor_count(const PitfallsSet& set);

/// Attempts to fold per-processor FALLS sets (result of expand_all or any
/// partitioning pattern) back into a compact PITFALLS set: succeeds when
/// every processor's set is the first one's shifted by i*d for a constant d.
/// Returns an empty set when the sets are not shift-regular.
PitfallsSet fold(const std::vector<FallsSet>& per_proc);

}  // namespace pfm
