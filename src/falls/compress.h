// Compression of run lists into compact FALLS sets.
//
// The intersection projections (paper section 7) are computed here as streams
// of maximal runs and then re-compressed into FALLS so that the regularity of
// array partitions is preserved: a projection of one BLOCK distribution onto
// another compresses back to a handful of FALLS instead of thousands of line
// segments, which is what keeps view-setting cost (t_i in Table 1) small and
// size-independent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "falls/falls.h"

namespace pfm {

/// Greedy single-level compression: groups maximal arithmetic progressions
/// of equal-length runs into flat FALLS. Input runs must be sorted by l,
/// disjoint and non-adjacent (i.e. maximal). O(runs).
FallsSet compress_runs(std::span<const LineSegment> runs);

/// Two-level compression: first compress_runs, then detect whether the flat
/// FALLS list is k >= 2 repetitions of its prefix shifted by a constant
/// period, and if so wrap the prefix into an outer FALLS. Applied repeatedly
/// this recovers nested structure of multidimensional partitions.
FallsSet compress_runs_nested(std::span<const LineSegment> runs);

/// Re-compresses an arbitrary FALLS set by enumerating its runs. The result
/// denotes the same byte set with a canonical (often smaller) structure.
FallsSet recompress(const FallsSet& set);

/// Number of FALLS nodes in the set (tree nodes, all levels) — a measure of
/// representation compactness used by the compression ablation.
std::int64_t node_count(const FallsSet& set);

}  // namespace pfm
