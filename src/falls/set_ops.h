// Set-level queries over nested FALLS: membership, rank (bytes below an
// offset), contiguity tests. These are the building blocks the mapping
// functions and the Clusterfile fast paths are verified against.
#pragma once

#include <cstdint>
#include <optional>

#include "falls/falls.h"

namespace pfm {

/// True when byte index x (relative to the start of the pattern period)
/// belongs to the byte set of f / set. Runs in O(tree depth).
bool falls_contains(const Falls& f, std::int64_t x);
bool set_contains(const FallsSet& set, std::int64_t x);

/// Number of member bytes strictly below x. This is the order-preserving
/// rank that underlies MAP: for x in the set, rank == MAP-AUX(x).
/// Runs in O(members * depth).
std::int64_t falls_rank(const Falls& f, std::int64_t x);
std::int64_t set_rank(const FallsSet& set, std::int64_t x);

/// True when the set denotes one single contiguous run (or is empty).
bool is_single_run(const FallsSet& set);

/// The first/last byte index of the set, std::nullopt when empty.
std::optional<std::int64_t> first_byte(const FallsSet& set);
std::optional<std::int64_t> last_byte(const FallsSet& set);

/// True when the two sets denote identical byte sets. Structural forms may
/// differ; comparison is by maximal runs, so it is exact and cheap for
/// compact representations.
bool same_byte_set(const FallsSet& a, const FallsSet& b);

/// True when every byte of `inner` also belongs to `outer`.
bool subset_of(const FallsSet& inner, const FallsSet& outer);

}  // namespace pfm
