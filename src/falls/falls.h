// Nested FALLS: the data representation at the core of the parallel file
// model (paper section 4).
//
// A line segment (l, r) describes the contiguous bytes [l, r] of a file.
// A FALLS (l, r, s, n) describes n equally sized, equally spaced segments:
// the k-th segment is [l + k*s, r + k*s]. A *nested* FALLS additionally
// carries a set of inner FALLS, expressed relative to the left index of the
// outer block, which select a subset of every outer block. A set of nested
// FALLS denotes the union of its members' byte sets; it is the description
// of one partition element (a subfile or a view).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace pfm {

/// Contiguous byte range [l, r], both inclusive (paper's line segment).
struct LineSegment {
  std::int64_t l = 0;
  std::int64_t r = 0;

  std::int64_t size() const { return r - l + 1; }
  bool operator==(const LineSegment&) const = default;
};

struct Falls;

/// A set of nested FALLS; denotes the union of the members' byte sets.
/// Members are kept sorted by left index and non-overlapping (see
/// validate_falls_set).
using FallsSet = std::vector<Falls>;

/// One (possibly nested) FALLS. With an empty `inner`, every block [l+k*s,
/// r+k*s] belongs wholly to the set; otherwise only the bytes selected by
/// `inner` (relative to the block's left index) do.
struct Falls {
  std::int64_t l = 0;  ///< left index of the first block
  std::int64_t r = 0;  ///< right index of the first block (inclusive)
  std::int64_t s = 1;  ///< stride between consecutive blocks
  std::int64_t n = 1;  ///< number of blocks
  FallsSet inner;      ///< inner FALLS, relative to each block's left index

  bool leaf() const { return inner.empty(); }
  /// Length of one block in bytes (r - l + 1).
  std::int64_t block_len() const { return r - l + 1; }
  bool operator==(const Falls&) const = default;
};

/// Convenience constructors.
Falls make_falls(std::int64_t l, std::int64_t r, std::int64_t s, std::int64_t n);
Falls make_nested(std::int64_t l, std::int64_t r, std::int64_t s, std::int64_t n,
                  FallsSet inner);
/// A line segment (l, r) as the FALLS (l, r, r - l + 1, 1).
Falls from_segment(const LineSegment& seg);

/// Number of bytes denoted by f / by all members of set (paper's SIZE).
std::int64_t falls_size(const Falls& f);
std::int64_t set_size(const FallsSet& set);

/// One past the last byte index touched by f / set (0 for an empty set).
/// For f: l + (n-1)*s + block_len().
std::int64_t falls_extent(const Falls& f);
std::int64_t set_extent(const FallsSet& set);

/// Height of the nesting tree: 1 for a leaf FALLS. For a set: the maximum
/// over members, 0 for an empty set.
int falls_height(const Falls& f);
int set_height(const FallsSet& set);

/// Structural validity of a nested FALLS:
///  - l >= 0, l <= r, n >= 1, s >= 1
///  - blocks must not overlap: s >= block_len when n > 1
///  - inner FALLS must lie within [0, block_len) and be valid themselves,
///    sorted by l with non-overlapping spans.
/// Throws std::invalid_argument with a description when invalid.
void validate_falls(const Falls& f);

/// Validity of a set: every member valid, members sorted by l, member spans
/// non-overlapping in the first period (the paper keeps partition elements
/// disjoint; overlap checks use spans, i.e. [l, extent) ranges).
void validate_falls_set(const FallsSet& set);

/// True when the set denotes no bytes (empty, or members with size 0 cannot
/// exist — validity requires l <= r — so this is just set.empty()).
inline bool set_empty(const FallsSet& set) { return set.empty(); }

/// Invokes fn(l, r) for every maximal contiguous run of bytes denoted by f,
/// in increasing order. Runs of a nested FALLS are the leaf blocks.
void for_each_run(const Falls& f, const std::function<void(std::int64_t, std::int64_t)>& fn);
void for_each_run(const FallsSet& set,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Enumerates every byte index of the set in increasing order (test oracle;
/// only sensible for small extents).
std::vector<std::int64_t> set_bytes(const FallsSet& set);
std::vector<std::int64_t> falls_bytes(const Falls& f);

/// All maximal runs as line segments, in increasing order.
std::vector<LineSegment> set_runs(const FallsSet& set);

/// Shifts every byte of the set by delta (delta may be negative as long as
/// no resulting index is negative).
FallsSet shift_set(const FallsSet& set, std::int64_t delta);
Falls shift_falls(const Falls& f, std::int64_t delta);

/// Wraps a set into a single-block outer FALLS spanning [0, span), used by
/// the intersection algorithm to equalize tree heights and to extend a
/// partitioning pattern over several periods (count outer repetitions).
Falls wrap_outer(FallsSet inner, std::int64_t span, std::int64_t count = 1);

/// Increases the height of every branch to exactly `height` by inserting
/// trivial inner FALLS (0, block_len-1, block_len, 1) at the leaves.
FallsSet equalize_height(const FallsSet& set, int height);

}  // namespace pfm
