#include "util/crc32.h"

#include <array>

namespace pfm {

namespace {

/// Four lookup tables for slice-by-4: table[0] is the classic byte-at-a-time
/// CRC table for the (reflected) polynomial; table[k][b] extends it by k
/// extra zero bytes.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  explicit Tables(std::uint32_t poly) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? poly : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (std::size_t k = 1; k < 4; ++k)
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
  }
};

const Tables& ieee_tables() {
  static const Tables t(0xEDB88320u);
  return t;
}

const Tables& castagnoli_tables() {
  static const Tables t(0x82F63B78u);
  return t;
}

std::uint32_t crc_sw(const Tables& tables, const void* data, std::size_t n,
                     std::uint32_t crc) {
  const auto& t = tables.t;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

#if defined(__x86_64__)
/// SSE4.2 CRC32 instruction path (the instruction implements exactly the
/// reflected Castagnoli polynomial, so it returns bit-identical values to
/// the table fallback). Dispatched at runtime; the target attribute lets the
/// builtin compile without raising the whole TU's ISA baseline.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(const void* data,
                                                          std::size_t n,
                                                          std::uint32_t crc) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t c = ~crc;
  while (n >= 8) {
    std::uint64_t v;
    __builtin_memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    n -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (n-- > 0) c32 = __builtin_ia32_crc32qi(c32, *p++);
  return ~c32;
}

bool have_sse42() {
  static const bool b = __builtin_cpu_supports("sse4.2");
  return b;
}
#endif

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc) {
  return crc_sw(ieee_tables(), data, n, crc);
}

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t crc) {
#if defined(__x86_64__)
  if (have_sse42()) return crc32c_hw(data, n, crc);
#endif
  return crc_sw(castagnoli_tables(), data, n, crc);
}

}  // namespace pfm
