#include "util/crc32.h"

#include <array>

namespace pfm {

namespace {

/// Four lookup tables for slice-by-4: table[0] is the classic byte-at-a-time
/// CRC-32 table; table[k][b] extends it by k extra zero bytes.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (std::size_t k = 1; k < 4; ++k)
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

}  // namespace pfm
