// Contract-checking macros for the FALLS algebra and the cluster substrate.
//
// The paper's correctness argument is algebraic — FALLS sets stay sorted and
// non-overlapping, MAP_S / MAP_S^-1 are inverses on the element's byte set,
// intersection projections have equal sizes on both sides — and a violated
// invariant otherwise surfaces only as silently wrong redistributed bytes.
// These macros make the invariants executable:
//
//   PFM_CHECK(cond, ...)   always-on precondition; throws ContractViolation
//                          with the failed expression, location and an
//                          optional streamed message.
//   PFM_DCHECK(cond, ...)  debug-build invariant; identical to PFM_CHECK when
//                          PFM_DCHECK_ENABLED is 1 (the asan-ubsan / tsan
//                          presets), compiled to a no-op that does not
//                          evaluate `cond` otherwise.
//   PFM_UNREACHABLE(...)   marks control flow the surrounding logic excludes.
//
// Failures throw rather than abort so that the I/O server's per-request
// error handling and the tests can observe them; ContractViolation derives
// from std::logic_error because a failed contract is a programming error,
// not an environmental condition.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pfm {

/// Thrown on a failed PFM_CHECK / PFM_DCHECK / PFM_UNREACHABLE.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// True when PFM_DCHECK compiles to a real check (CMake -DPFM_DCHECKS=ON,
/// default in Debug builds). Tests branch on this to assert either the throw
/// or the no-op behaviour.
#if defined(PFM_DCHECK_ENABLED) && PFM_DCHECK_ENABLED
inline constexpr bool kDcheckEnabled = true;
#else
inline constexpr bool kDcheckEnabled = false;
#endif

namespace detail {

[[noreturn]] void check_failed(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg);

template <typename... Ts>
std::string check_cat(const Ts&... parts) {
  if constexpr (sizeof...(parts) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  }
}

}  // namespace detail
}  // namespace pfm

#define PFM_CHECK(cond, ...)                                               \
  do {                                                                     \
    if (!(cond)) [[unlikely]]                                              \
      ::pfm::detail::check_failed("PFM_CHECK", #cond, __FILE__, __LINE__,  \
                                  ::pfm::detail::check_cat(__VA_ARGS__));  \
  } while (0)

#if defined(PFM_DCHECK_ENABLED) && PFM_DCHECK_ENABLED
#define PFM_DCHECK(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) [[unlikely]]                                              \
      ::pfm::detail::check_failed("PFM_DCHECK", #cond, __FILE__, __LINE__, \
                                  ::pfm::detail::check_cat(__VA_ARGS__));  \
  } while (0)
#else
// The condition must still parse (so checked expressions cannot rot) but is
// never evaluated: sizeof is an unevaluated context.
#define PFM_DCHECK(cond, ...) \
  do {                        \
    (void)sizeof(!(cond));    \
  } while (0)
#endif

#define PFM_UNREACHABLE(...)                                          \
  ::pfm::detail::check_failed("PFM_UNREACHABLE", "reached", __FILE__, \
                              __LINE__, ::pfm::detail::check_cat(__VA_ARGS__))
