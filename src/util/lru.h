// Bounded least-recently-used cache, the backing store of the Clusterfile
// client's access-plan cache (DESIGN.md, "The access-plan layer"). Not
// internally synchronized: each client owns one instance and is, like the
// rest of the client, single-threaded per instance; callers that share one
// must lock around it. Lockdep builds enforce that contract with an
// AccessCanary — two threads inside a mutating operation at once fail a
// PFM_CHECK instead of silently corrupting the list/index pair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/lockdep.h"

namespace pfm {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// A capacity of 0 disables the cache: get always misses, put is a no-op.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return order_.size(); }
  std::int64_t evictions() const { return evictions_; }

  /// Shrinks/grows the bound; evicts from the LRU end when shrinking.
  void set_capacity(std::size_t capacity) {
    AccessCanary::Scope guard(canary_);
    capacity_ = capacity;
    trim();
  }

  /// Pointer to the cached value (marked most recently used), or nullptr.
  /// The pointer is invalidated by the next put/clear/set_capacity.
  Value* get(const Key& key) {
    AccessCanary::Scope guard(canary_);  // get mutates recency order too
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites; the entry becomes most recently used. Evicts
  /// from the LRU end when over capacity.
  void put(Key key, Value value) {
    AccessCanary::Scope guard(canary_);
    if (capacity_ == 0) return;
    if (const auto it = index_.find(key); it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(std::move(key), std::move(value));
    index_.emplace(order_.front().first, order_.begin());
    trim();
  }

  void clear() {
    AccessCanary::Scope guard(canary_);
    order_.clear();
    index_.clear();
  }

 private:
  void trim() {
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  ///< front = most recently used
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      index_;
  std::int64_t evictions_ = 0;
  AccessCanary canary_{"LruCache"};
};

}  // namespace pfm
