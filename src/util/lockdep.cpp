#include "util/lockdep.h"

#if PFM_LOCKDEP_ON

#include <map>
#include <memory>
#include <mutex>  // pfm-lint: allow(raw-mutex)
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace pfm::lockdep {

struct LockClass {
  std::string name;
};

namespace {

struct Edge {
  /// The acquiring thread's held stack when this edge was first recorded —
  /// "the other side" of an inversion report.
  std::string holder_stack;
};

struct Graph {
  // Lockdep's own leaf lock; must be a raw std::mutex, not pfm::Mutex, or
  // every acquisition would recurse into the tracker.
  std::mutex mu;  // pfm-lint: allow(raw-mutex)
  std::map<const LockClass*, std::map<const LockClass*, Edge>> adj;
  /// Bumped by reset_for_test to invalidate per-thread edge caches.
  std::atomic<std::uint64_t> epoch{0};
};

// Intentionally leaked: static-destruction order is unknowable relative to
// static pfm::Mutex owners (ThreadPool::shared()), whose teardown still
// calls the hooks.
Graph& graph() {
  static Graph* g = new Graph;
  return *g;
}

struct ThreadState {
  std::vector<const LockClass*> held;
  /// Edges this thread has already pushed into the graph; lets the hot
  /// path (same nesting repeated) skip the global lock.
  std::set<std::pair<const LockClass*, const LockClass*>> seen_edges;
  std::uint64_t cache_epoch = 0;
  ~ThreadState();
};

/// Trivially destructible, so it outlives the ThreadState TLS slot. A
/// thread's TLS destructors can run before the last pfm::Mutex use on that
/// thread — on the main thread, atexit-destroyed statics such as
/// ThreadPool::shared() still lock and unlock during shutdown — and the
/// hooks must then degrade to no-ops instead of touching freed storage
/// (the same teardown-order reason graph() is leaked).
thread_local bool t_state_dead = false;

ThreadState::~ThreadState() { t_state_dead = true; }

ThreadState* state() {
  if (t_state_dead) return nullptr;
  static thread_local ThreadState s;
  return &s;
}

std::string stack_string(const std::vector<const LockClass*>& held) {
  if (held.empty()) return "(none)";
  std::string s;
  for (const LockClass* c : held) {
    if (!s.empty()) s += " -> ";
    s += c->name;
  }
  return s;
}

/// Depth-first search for a path from `from` to `to` in the acquisition
/// graph; fills `path` (inclusive of both endpoints) when found. Caller
/// holds graph().mu.
bool find_path(const LockClass* from, const LockClass* to,
               std::vector<const LockClass*>& path) {
  path.push_back(from);
  if (from == to) return true;
  const auto it = graph().adj.find(from);
  if (it != graph().adj.end()) {
    for (const auto& [next, edge] : it->second) {
      bool revisit = false;
      for (const LockClass* seen : path)
        if (seen == next) revisit = true;
      if (revisit) continue;
      if (find_path(next, to, path)) return true;
    }
  }
  path.pop_back();
  return false;
}

std::string path_string(const std::vector<const LockClass*>& path) {
  std::string s;
  for (const LockClass* c : path) {
    if (!s.empty()) s += " -> ";
    s += "'" + c->name + "'";
  }
  return s;
}

}  // namespace

const LockClass* intern_class(const char* name) {
  static std::mutex mu;  // pfm-lint: allow(raw-mutex)
  static auto* table = new std::map<std::string, std::unique_ptr<LockClass>>;
  const std::string key = name != nullptr ? name : "pfm::Mutex";
  std::lock_guard<std::mutex> lk(mu);  // pfm-lint: allow(raw-mutex)
  std::unique_ptr<LockClass>& slot = (*table)[key];
  if (slot == nullptr) slot = std::make_unique<LockClass>(LockClass{key});
  return slot.get();
}

void note_acquire(const LockClass* c) {
  ThreadState* ts = state();
  if (ts == nullptr) return;
  std::vector<const LockClass*>& held = ts->held;
  for (const LockClass* h : held) {
    PFM_CHECK(h != c,
              "lockdep: acquiring lock class '", c->name,
              "' already held by this thread (self-deadlock on the "
              "non-recursive lock, or an unordered same-name pair; held stack: ",
              stack_string(held), ")");
  }
  if (held.empty()) return;

  Graph& g = graph();
  const std::uint64_t epoch = g.epoch.load(std::memory_order_acquire);
  if (ts->cache_epoch != epoch) {
    ts->seen_edges.clear();
    ts->cache_epoch = epoch;
  }
  bool all_seen = true;
  for (const LockClass* h : held)
    if (ts->seen_edges.count({h, c}) == 0) all_seen = false;
  if (all_seen) return;

  std::lock_guard<std::mutex> lk(g.mu);  // pfm-lint: allow(raw-mutex)
  for (const LockClass* h : held) {
    auto& row = g.adj[h];
    if (row.count(c) != 0) {
      ts->seen_edges.insert({h, c});
      continue;
    }
    // Adding h -> c; a pre-existing path c ->* h makes the order cyclic.
    std::vector<const LockClass*> path;
    if (find_path(c, h, path)) {
      const Edge& prior = g.adj.at(path[0]).at(path[1]);
      PFM_CHECK(false, "lockdep: lock-order inversion acquiring '", c->name,
                "'\n  this thread's acquisition stack: ", stack_string(held),
                " -> ", c->name,
                "\n  conflicts with established order ", path_string(path),
                "\n  first recorded with acquisition stack: ",
                prior.holder_stack, " -> ", path[1]->name);
    }
    row.emplace(c, Edge{stack_string(held)});
    ts->seen_edges.insert({h, c});
  }
}

void note_held(const LockClass* c) {
  if (ThreadState* ts = state()) ts->held.push_back(c);
}

void note_release(const LockClass* c) {
  ThreadState* ts = state();
  if (ts == nullptr) return;
  std::vector<const LockClass*>& held = ts->held;
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == c) {
      held.erase(std::next(it).base());
      return;
    }
  }
  PFM_CHECK(false, "lockdep: releasing lock class '", c->name,
            "' this thread does not hold (held stack: ", stack_string(held),
            ")");
}

void check_no_locks_held(const char* what) {
  ThreadState* ts = state();
  if (ts == nullptr) return;
  PFM_CHECK(ts->held.empty(), "lockdep: ", what,
            " would block while this thread holds pfm::Mutex(es): ",
            stack_string(ts->held),
            " — blocking channel/pool waits must run lock-free");
}

std::size_t held_count() {
  ThreadState* ts = state();
  return ts != nullptr ? ts->held.size() : 0;
}

void reset_for_test() {
  ThreadState* ts = state();
  if (ts != nullptr) {
    PFM_CHECK(ts->held.empty(), "lockdep: reset_for_test with locks held: ",
              stack_string(ts->held));
  }
  Graph& g = graph();
  std::lock_guard<std::mutex> lk(g.mu);  // pfm-lint: allow(raw-mutex)
  g.adj.clear();
  g.epoch.fetch_add(1, std::memory_order_acq_rel);
  if (ts != nullptr) {
    ts->seen_edges.clear();
    ts->cache_epoch = g.epoch.load(std::memory_order_acquire);
  }
}

}  // namespace pfm::lockdep

#endif  // PFM_LOCKDEP_ON
