// Seeded pseudo-random generator for property tests and workload generators.
//
// A thin wrapper over std::mt19937_64 with convenience ranges; every use in
// tests/benchmarks takes an explicit seed so runs are reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace pfm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : eng_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(eng_);
  }

  /// True with probability p.
  bool chance(double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(eng_) < p;
  }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace pfm
