// Integer arithmetic helpers used throughout the FALLS algebra.
//
// All file offsets and sizes in this library are signed 64-bit. The FALLS
// intersection algorithm relies on exact lcm/gcd of strides and on
// floor-division semantics for possibly-negative differences, which C++'s
// builtin operators do not provide for negative operands.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>

namespace pfm {

/// Greatest common divisor. gcd(0, x) == x. Inputs must be non-negative.
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// Least common multiple. Throws std::overflow_error when the result would
/// not fit in int64. lcm(0, x) == 0.
std::int64_t lcm64(std::int64_t a, std::int64_t b);

/// Floor division: rounds toward negative infinity (Python's //).
constexpr std::int64_t div_floor(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b;
  const std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

/// Mathematical modulus: result has the sign of the divisor (Python's %).
constexpr std::int64_t mod_floor(std::int64_t a, std::int64_t b) {
  const std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}

/// Ceiling division for non-negative a and positive b.
constexpr std::int64_t div_ceil(std::int64_t a, std::int64_t b) {
  return div_floor(a + b - 1, b);
}

/// Checked multiplication; throws std::overflow_error on overflow.
std::int64_t mul_checked(std::int64_t a, std::int64_t b);

/// Checked addition / subtraction; throw std::overflow_error on overflow.
std::int64_t add_checked(std::int64_t a, std::int64_t b);
std::int64_t sub_checked(std::int64_t a, std::int64_t b);

/// l + k*s with every step overflow-checked: the FALLS block-advance
/// expression, used by the validators so that a hostile serialized FALLS
/// (huge l/s/n from parse_falls_set) cannot make extent computations wrap.
std::int64_t affine_checked(std::int64_t l, std::int64_t k, std::int64_t s);

/// Total decimal-integer parse for untrusted text (wire metadata,
/// manifests, serialized FALLS): accepts an optional leading '-', digits,
/// nothing else, and throws std::invalid_argument — never std::out_of_range
/// — on junk, empty input, or a value outside int64. std::stoll's
/// out_of_range on attacker-sized numbers is exactly the contract leak the
/// format fuzzers caught, so src/ code parses integers through this helper
/// (lint-enforced: no std::sto* in src/).
std::int64_t parse_i64(std::string_view text);

/// True when x is a power of two (x > 0).
constexpr bool is_pow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

/// Integer log2 of a power of two.
int log2_exact(std::int64_t x);

}  // namespace pfm
