// Wall-clock phase timer used by the Clusterfile case study and benchmarks.
#pragma once

#include <chrono>
#include <cstdint>

namespace pfm {

/// Monotonic stopwatch with microsecond reporting.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time since construction or last reset, in microseconds.
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_us() / 1000.0; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across disjoint measured sections (e.g. the gather phase
/// of every write in a repetition loop).
class PhaseAccumulator {
 public:
  void add_us(double us) {
    total_us_ += us;
    ++samples_;
  }

  void clear() {
    total_us_ = 0;
    samples_ = 0;
  }

  double total_us() const { return total_us_; }
  std::int64_t samples() const { return samples_; }

 private:
  double total_us_ = 0;
  std::int64_t samples_ = 0;
};

/// RAII helper: measures the lifetime of a scope into an accumulator.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseAccumulator& acc) : acc_(acc) {}
  ~ScopedPhase() { acc_.add_us(timer_.elapsed_us()); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseAccumulator& acc_;
  Timer timer_;
};

}  // namespace pfm
