// Byte-buffer helpers shared by the redistribution executor, the datatype
// pack/unpack routines and the Clusterfile storage backends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pfm {

using Buffer = std::vector<std::byte>;

/// Fills buf with a deterministic pseudo-random pattern derived from seed.
/// Used by tests and benchmarks to create recognizable file images.
void fill_pattern(std::span<std::byte> buf, std::uint64_t seed);

/// Returns a buffer of n bytes filled via fill_pattern.
Buffer make_pattern_buffer(std::size_t n, std::uint64_t seed);

/// Byte at file offset `off` of the canonical test image with seed `seed`.
/// fill_pattern(buf, seed) makes buf[i] == pattern_byte(i, seed).
std::byte pattern_byte(std::uint64_t off, std::uint64_t seed);

/// memcmp convenience; true when the two spans have equal size and contents.
bool equal_bytes(std::span<const std::byte> a, std::span<const std::byte> b);

}  // namespace pfm
