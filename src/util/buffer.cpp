#include "util/buffer.h"

#include <cstring>

namespace pfm {

namespace {
// splitmix64: tiny, high-quality 64-bit mixer; good enough to make every
// byte of a test image distinct with overwhelming probability.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

std::byte pattern_byte(std::uint64_t off, std::uint64_t seed) {
  return static_cast<std::byte>(mix64(off ^ (seed * 0x2545f4914f6cdd1dULL)) & 0xff);
}

void fill_pattern(std::span<std::byte> buf, std::uint64_t seed) {
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = pattern_byte(i, seed);
}

Buffer make_pattern_buffer(std::size_t n, std::uint64_t seed) {
  Buffer b(n);
  fill_pattern(b, seed);
  return b;
}

bool equal_bytes(std::span<const std::byte> a, std::span<const std::byte> b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size()) == 0;
}

}  // namespace pfm
