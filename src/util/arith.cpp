#include "util/arith.h"

#include <limits>

namespace pfm {

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  if (a < 0 || b < 0) throw std::invalid_argument("gcd64: negative input");
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t mul_checked(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out))
    throw std::overflow_error("mul_checked: int64 overflow");
  return out;
}

std::int64_t add_checked(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out))
    throw std::overflow_error("add_checked: int64 overflow");
  return out;
}

std::int64_t sub_checked(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_sub_overflow(a, b, &out))
    throw std::overflow_error("sub_checked: int64 overflow");
  return out;
}

std::int64_t affine_checked(std::int64_t l, std::int64_t k, std::int64_t s) {
  return add_checked(l, mul_checked(k, s));
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  const std::int64_t g = gcd64(a, b);
  return mul_checked(a / g, b);
}

int log2_exact(std::int64_t x) {
  if (!is_pow2(x)) throw std::invalid_argument("log2_exact: not a power of two");
  int k = 0;
  while ((std::int64_t{1} << k) != x) ++k;
  return k;
}

}  // namespace pfm
