#include "util/arith.h"

#include <limits>
#include <string>

namespace pfm {

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  if (a < 0 || b < 0) throw std::invalid_argument("gcd64: negative input");
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t mul_checked(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out))
    throw std::overflow_error("mul_checked: int64 overflow");
  return out;
}

std::int64_t add_checked(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out))
    throw std::overflow_error("add_checked: int64 overflow");
  return out;
}

std::int64_t sub_checked(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_sub_overflow(a, b, &out))
    throw std::overflow_error("sub_checked: int64 overflow");
  return out;
}

std::int64_t affine_checked(std::int64_t l, std::int64_t k, std::int64_t s) {
  return add_checked(l, mul_checked(k, s));
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  const std::int64_t g = gcd64(a, b);
  return mul_checked(a / g, b);
}

std::int64_t parse_i64(std::string_view text) {
  const auto bad = [&] {
    throw std::invalid_argument("parse_i64: not a 64-bit integer: '" +
                                std::string(text) + "'");
  };
  std::size_t i = 0;
  const bool negative = !text.empty() && text[0] == '-';
  if (negative) i = 1;
  if (i == text.size()) bad();
  // Accumulate negated (the magnitude of INT64_MIN does not fit in int64).
  std::int64_t value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') bad();
    if (__builtin_mul_overflow(value, std::int64_t{10}, &value) ||
        __builtin_sub_overflow(value, std::int64_t{c - '0'}, &value))
      bad();
  }
  if (!negative) {
    if (__builtin_sub_overflow(std::int64_t{0}, value, &value)) bad();
  }
  return value;
}

int log2_exact(std::int64_t x) {
  if (!is_pow2(x)) throw std::invalid_argument("log2_exact: not a power of two");
  int k = 0;
  while ((std::int64_t{1} << k) != x) ++k;
  return k;
}

}  // namespace pfm
