#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>  // pfm-lint: allow(raw-mutex)

namespace pfm {

namespace {

LogLevel parse_env() {
  const char* e = std::getenv("PFM_LOG");
  if (e == nullptr) return LogLevel::kWarn;
  if (std::strcmp(e, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(e, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(e, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(e, "error") == 0) return LogLevel::kError;
  if (std::strcmp(e, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> t{static_cast<int>(parse_env())};
  return t;
}

const char* level_name(LogLevel lv) {
  switch (lv) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel lv) {
  threshold_storage().store(static_cast<int>(lv), std::memory_order_relaxed);
}

void log_line(LogLevel lv, const std::string& msg) {
  // Deliberately a raw std::mutex, not pfm::Mutex: logging must work from
  // inside lockdep/PFM_CHECK failure paths without re-entering lockdep.
  static std::mutex mu;                     // pfm-lint: allow(raw-mutex)
  std::lock_guard<std::mutex> lock(mu);     // pfm-lint: allow(raw-mutex)
  std::fprintf(stderr, "[pfm %s] %s\n", level_name(lv), msg.c_str());
}

}  // namespace pfm
