#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pfm {

ReliabilityCounters& ReliabilityCounters::operator+=(
    const ReliabilityCounters& o) {
  retries += o.retries;
  timeouts += o.timeouts;
  stale_replies += o.stale_replies;
  corruptions_detected += o.corruptions_detected;
  view_reinstalls += o.view_reinstalls;
  duplicates_suppressed += o.duplicates_suppressed;
  failures += o.failures;
  errors_sent += o.errors_sent;
  failovers += o.failovers;
  degraded += o.degraded;
  replica_failures += o.replica_failures;
  quorum_short += o.quorum_short;
  repairs_started += o.repairs_started;
  repairs_completed += o.repairs_completed;
  repairs_failed += o.repairs_failed;
  bytes_re_replicated += o.bytes_re_replicated;
  return *this;
}

bool ReliabilityCounters::all_zero() const {
  return retries == 0 && timeouts == 0 && stale_replies == 0 &&
         corruptions_detected == 0 && view_reinstalls == 0 &&
         duplicates_suppressed == 0 && failures == 0 && errors_sent == 0 &&
         failovers == 0 && degraded == 0 && replica_failures == 0 &&
         quorum_short == 0 && repairs_started == 0 &&
         repairs_completed == 0 && repairs_failed == 0 &&
         bytes_re_replicated == 0;
}

double Stats::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::min() const {
  if (samples_.empty()) throw std::logic_error("Stats::min on empty");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  if (samples_.empty()) throw std::logic_error("Stats::max on empty");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::rel_stddev() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double Stats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("Stats::percentile: p outside [0, 100]");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace pfm
