#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pfm {

double Stats::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::min() const {
  if (samples_.empty()) throw std::logic_error("Stats::min on empty");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  if (samples_.empty()) throw std::logic_error("Stats::max on empty");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::rel_stddev() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

}  // namespace pfm
