#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "util/lockdep.h"

namespace pfm {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Tasks left in the queue are parallel_for stragglers whose loop the
  // respective caller already drained (the shared counter is exhausted);
  // dropping them is harmless.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lk(mu_);
    if (stop_) return;  // shutting down: the caller-participation rule
                        // guarantees the loop completes without us
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(lk);
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  // Even the inline paths run under the no-locks rule: whether the loop
  // body executes on workers or on the caller must not depend on what the
  // caller may hold (and fn itself may take locks or block on channels).
  PFM_LOCKDEP_ASSERT_UNLOCKED("ThreadPool::parallel_for");
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Per-call state, shared between the caller and the helper tasks. The
  // caller blocks until done == n, so `fn` outlives every use; the
  // shared_ptr only keeps the counters alive for stragglers that wake
  // after the counter is exhausted.
  struct ForCtx {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> cancelled{false};
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    Mutex mu{"ThreadPool::ForCtx::mu"};
    CondVar cv;
    std::exception_ptr err PFM_GUARDED_BY(mu);
  };
  auto ctx = std::make_shared<ForCtx>();
  ctx->n = n;
  ctx->fn = &fn;

  auto run = [ctx] {
    for (;;) {
      const std::size_t i = ctx->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= ctx->n) break;
      if (!ctx->cancelled.load(std::memory_order_relaxed)) {
        try {
          (*ctx->fn)(i);
        } catch (...) {
          MutexLock lk(ctx->mu);
          if (!ctx->err) ctx->err = std::current_exception();
          ctx->cancelled.store(true, std::memory_order_relaxed);
        }
      }
      // acq_rel chain: the body's writes happen-before the caller's
      // acquire load of `done` observing the final count.
      if (ctx->done.fetch_add(1, std::memory_order_acq_rel) + 1 == ctx->n) {
        MutexLock lk(ctx->mu);
        ctx->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) submit(run);
  run();  // the caller claims indices too — see header contract (1)

  MutexLock lk(ctx->mu);
  while (ctx->done.load(std::memory_order_acquire) != ctx->n) ctx->cv.wait(lk);
  if (ctx->err) std::rethrow_exception(ctx->err);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("PFM_POOL_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 0 && v <= 64) return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(std::clamp(hw, 2u, 8u));
  }());
  return pool;
}

}  // namespace pfm
