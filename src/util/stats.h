// Small descriptive-statistics helper for benchmark repetitions.
//
// The paper reports means of 10 repetitions and notes the standard deviation
// stayed within 4% of the mean; the table binaries reproduce that protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pfm {

/// Reliability counters of the Clusterfile request layer (DESIGN.md
/// "Failure model"). Clients and I/O servers each fill the fields that
/// apply to their side; Clusterfile and the bench JSON sum them with
/// operator+=. With no fault plan installed every field must stay zero —
/// tests assert all_zero() to prove the reliable path adds no traffic.
struct ReliabilityCounters {
  std::int64_t retries = 0;               ///< requests resent (any reason)
  std::int64_t timeouts = 0;              ///< reply deadlines that expired
  std::int64_t stale_replies = 0;         ///< duplicate/late replies discarded
  std::int64_t corruptions_detected = 0;  ///< checksum mismatches caught
  std::int64_t view_reinstalls = 0;       ///< views re-shipped after recovery
  std::int64_t duplicates_suppressed = 0; ///< retransmits answered from cache
  std::int64_t failures = 0;              ///< targets failed after all retries
  std::int64_t errors_sent = 0;           ///< kError replies a server issued
  std::int64_t failovers = 0;             ///< requests retargeted to a backup
                                          ///< replica after the current node
                                          ///< was given up on
  std::int64_t degraded = 0;              ///< accesses that completed without
                                          ///< a full healthy replica set
  std::int64_t replica_failures = 0;      ///< replica requests abandoned while
                                          ///< the access still succeeded
  std::int64_t quorum_short = 0;          ///< quorum writes whose straggler
                                          ///< set was abandoned before every
                                          ///< replica acked (groups, not
                                          ///< requests; scrub owes a repair)
  std::int64_t repairs_started = 0;       ///< subfile re-replications begun
                                          ///< by the self-healing layer
  std::int64_t repairs_completed = 0;     ///< re-replications that restored a
                                          ///< replica to full epoch parity
  std::int64_t repairs_failed = 0;        ///< re-replications abandoned after
                                          ///< the shared retry budget
  std::int64_t bytes_re_replicated = 0;   ///< payload bytes copied onto
                                          ///< replacement replicas

  ReliabilityCounters& operator+=(const ReliabilityCounters& o);
  bool all_zero() const;
};

/// Accumulates samples and reports mean / stddev / min / max.
class Stats {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  double min() const;
  double max() const;
  /// stddev / mean, or 0 when the mean is 0.
  double rel_stddev() const;

  /// The p-th percentile (p in [0, 100]) with linear interpolation between
  /// order statistics; 0 for an empty sample set. percentile(50) is the
  /// median — the robust center the bench JSON reports alongside p95.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace pfm
