// Small descriptive-statistics helper for benchmark repetitions.
//
// The paper reports means of 10 repetitions and notes the standard deviation
// stayed within 4% of the mean; the table binaries reproduce that protocol.
#pragma once

#include <cstddef>
#include <vector>

namespace pfm {

/// Accumulates samples and reports mean / stddev / min / max.
class Stats {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  double min() const;
  double max() const;
  /// stddev / mean, or 0 when the mean is 0.
  double rel_stddev() const;

  /// The p-th percentile (p in [0, 100]) with linear interpolation between
  /// order statistics; 0 for an empty sample set. percentile(50) is the
  /// median — the robust center the bench JSON reports alongside p95.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace pfm
