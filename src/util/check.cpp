#include "util/check.h"

namespace pfm::detail {

void check_failed(const char* kind, const char* expr, const char* file,
                  int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " (" << file << ":" << line << ")";
  if (!msg.empty()) os << ": " << msg;
  throw ContractViolation(os.str());
}

}  // namespace pfm::detail
