// Small fixed-size thread pool for the embarrassingly parallel loops of the
// Clusterfile client and the redistribution engine: the per-subfile
// intersect+project loop of set_view, the per-transfer gather/scatter loop
// of execute_redist, and the per-aggregator phase of two-phase collective
// I/O. Each of those iterates over independent work items; the pool turns
// them into parallel_for calls without per-call thread spawning.
//
// Design constraints, in order:
//   1. The calling thread always participates in parallel_for, claiming
//      indices from the same atomic counter as the workers. Completion
//      therefore never depends on a worker being scheduled: a pool of size
//      0, a saturated pool, or a nested parallel_for issued from inside a
//      worker all still terminate (the caller simply drains the loop
//      itself).
//   2. parallel_for is safe to call concurrently from many threads (the
//      Table 1 benches run four clients in four threads over one shared
//      pool); each call carries its own completion state.
//   3. The first exception thrown by the body is captured and rethrown in
//      the caller after the loop quiesces; remaining indices are skipped.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pfm {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is valid: every parallel_for then runs
  /// entirely on the calling thread).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(0) .. fn(n-1), each exactly once, distributing indices over
  /// the workers and the calling thread; blocks until all have finished.
  /// Rethrows the first exception fn threw (further indices are skipped
  /// once an exception is recorded). Blocks, so the caller must hold no
  /// pfm::Mutex (lockdep-enforced).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      PFM_EXCLUDES(mu_);

  /// The process-wide pool shared by set_view, execute_redist and the
  /// collective layer. Size: hardware_concurrency clamped to [2, 8], or
  /// the PFM_POOL_THREADS environment variable (0 disables the workers).
  static ThreadPool& shared();

 private:
  void submit(std::function<void()> task) PFM_EXCLUDES(mu_);
  void worker_loop() PFM_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ PFM_GUARDED_BY(mu_);
  Mutex mu_{"ThreadPool::mu"};
  CondVar cv_;
  bool stop_ PFM_GUARDED_BY(mu_) = false;
};

}  // namespace pfm
