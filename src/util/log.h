// Minimal leveled logger. Off by default; the Clusterfile simulation enables
// it under PFM_LOG=debug for tracing the message protocol.
#pragma once

#include <sstream>
#include <string>

namespace pfm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; initialized from the PFM_LOG environment variable
/// (debug|info|warn|error|off) on first use.
LogLevel log_threshold();
void set_log_threshold(LogLevel lv);

/// Emits one line to stderr when lv >= threshold. Thread-safe (single write).
void log_line(LogLevel lv, const std::string& msg);

namespace detail {
template <typename... Ts>
std::string cat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

#define PFM_LOG(level, ...)                                       \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::pfm::log_threshold()))                 \
      ::pfm::log_line(level, ::pfm::detail::cat(__VA_ARGS__));    \
  } while (0)

#define PFM_DEBUG(...) PFM_LOG(::pfm::LogLevel::kDebug, __VA_ARGS__)
#define PFM_INFO(...) PFM_LOG(::pfm::LogLevel::kInfo, __VA_ARGS__)
#define PFM_WARN(...) PFM_LOG(::pfm::LogLevel::kWarn, __VA_ARGS__)
#define PFM_ERROR(...) PFM_LOG(::pfm::LogLevel::kError, __VA_ARGS__)

}  // namespace pfm
