// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for message payload integrity
// in the Clusterfile protocol. Slice-by-4 table lookup: fast enough that a
// checksummed message costs a few cycles per byte, and checksumming is only
// enabled at all when a fault plan is installed (see Network::checksums_enabled).
#pragma once

#include <cstddef>
#include <cstdint>

namespace pfm {

/// CRC-32 of `n` bytes at `data`, continuing from `crc` (pass 0 to start a
/// fresh checksum; feed the previous return value to chain buffers).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc = 0);

/// CRC-32C (Castagnoli, polynomial 0x82F63B78), same chaining convention.
/// Hardware-accelerated via the SSE4.2 CRC32 instruction when the CPU has
/// it (runtime-detected; the table fallback is bit-identical). Used for
/// storage block checksums, which are process-internal and never cross the
/// wire — the message protocol stays on the IEEE crc32 above.
std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t crc = 0);

}  // namespace pfm
