// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for message payload integrity
// in the Clusterfile protocol. Slice-by-4 table lookup: fast enough that a
// checksummed message costs a few cycles per byte, and checksumming is only
// enabled at all when a fault plan is installed (see Network::checksums_enabled).
#pragma once

#include <cstddef>
#include <cstdint>

namespace pfm {

/// CRC-32 of `n` bytes at `data`, continuing from `crc` (pass 0 to start a
/// fresh checksum; feed the previous return value to chain buffers).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc = 0);

}  // namespace pfm
