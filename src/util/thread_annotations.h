// Clang Thread Safety Analysis annotation macros (the tentpole of the
// concurrency-correctness pass; DESIGN.md "Concurrency & analysis").
//
// The macros expand to Clang `capability` attributes when the compiler
// supports them and to nothing otherwise, so GCC builds are unaffected and a
// dedicated clang CI job compiles src/ with -Wthread-safety promoted to an
// error. Conventions:
//
//   - Lock-protected members are declared `PFM_GUARDED_BY(mu_)`; the
//     analysis then rejects any access outside a critical section.
//   - Internal helpers that expect the caller to hold the lock say
//     `PFM_REQUIRES(mu_)`; public entry points that take the lock themselves
//     say `PFM_EXCLUDES(mu_)` so accidental re-entry is a compile error.
//   - Only pfm::Mutex (util/mutex.h) carries the CAPABILITY attribute; raw
//     std::mutex outside the wrapper is rejected by tools/lint/pfm_lint.py.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define PFM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PFM_THREAD_ANNOTATION__(x)  // no-op under GCC/MSVC
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define PFM_CAPABILITY(x) PFM_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define PFM_SCOPED_CAPABILITY PFM_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define PFM_GUARDED_BY(x) PFM_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define PFM_PT_GUARDED_BY(x) PFM_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function precondition: the listed capabilities are held at entry and
/// still held at exit.
#define PFM_REQUIRES(...) \
  PFM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function precondition: the listed capabilities are NOT held at entry
/// (guards against self-deadlock on non-reentrant locks).
#define PFM_EXCLUDES(...) PFM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define PFM_ACQUIRE(...) \
  PFM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define PFM_RELEASE(...) \
  PFM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define PFM_TRY_ACQUIRE(b, ...) \
  PFM_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

/// Declares this function returns a reference to the given capability
/// (accessor pattern).
#define PFM_RETURN_CAPABILITY(x) PFM_THREAD_ANNOTATION__(lock_returned(x))

/// Runtime assertion that the capability is held (for code paths the static
/// analysis cannot follow).
#define PFM_ASSERT_CAPABILITY(x) \
  PFM_THREAD_ANNOTATION__(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the analysis cannot see the invariant.
#define PFM_NO_THREAD_SAFETY_ANALYSIS \
  PFM_THREAD_ANNOTATION__(no_thread_safety_analysis)
