// Annotated mutex wrapper: the only lock type the repository uses outside
// leaf infrastructure (tools/lint/pfm_lint.py rejects naked std::mutex).
//
// pfm::Mutex carries the Clang thread-safety CAPABILITY attribute, so
// GUARDED_BY/REQUIRES annotations on the structures it protects are
// compiler-enforced in the -Wthread-safety CI job, and it feeds every
// acquisition into the runtime lockdep tracker (util/lockdep.h) in debug
// builds. The name passed at construction is the lock *class* for lockdep
// ordering — give every distinct lock role a distinct name.
//
// Waiting uses pfm::CondVar with the explicit-loop idiom:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(lock);
//
// (never the predicate-lambda overloads: Clang's analysis cannot see the
// capability inside the lambda, and condition_variable_any routes the
// unlock/relock through Mutex, keeping the lockdep held stack exact across
// the wait).
#pragma once

#include <chrono>
#include <condition_variable>  // pfm-lint: allow(raw-mutex)
#include <mutex>               // pfm-lint: allow(raw-mutex)

#include "util/lockdep.h"
#include "util/thread_annotations.h"

namespace pfm {

class PFM_CAPABILITY("mutex") Mutex {
 public:
  /// `name` identifies the lock class for lockdep and diagnostics; nullptr
  /// falls back to the shared "pfm::Mutex" class.
  explicit Mutex(const char* name = nullptr) {
    (void)name;
#if PFM_LOCKDEP_ON
    class_ = lockdep::intern_class(name);
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PFM_ACQUIRE() {
#if PFM_LOCKDEP_ON
    lockdep::note_acquire(class_);
#endif
    mu_.lock();
#if PFM_LOCKDEP_ON
    lockdep::note_held(class_);
#endif
  }

  void unlock() PFM_RELEASE() {
    mu_.unlock();
#if PFM_LOCKDEP_ON
    lockdep::note_release(class_);
#endif
  }

  bool try_lock() PFM_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
#if PFM_LOCKDEP_ON
    if (ok) lockdep::note_held(class_);
#endif
    return ok;
  }

 private:
  friend class CondVar;
  std::mutex mu_;  // pfm-lint: allow(raw-mutex) — the wrapper itself
#if PFM_LOCKDEP_ON
  const lockdep::LockClass* class_ = nullptr;
#endif
};

/// RAII critical section over pfm::Mutex (std::lock_guard analog that the
/// thread-safety analysis understands as a scoped capability).
class PFM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PFM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PFM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// Condition variable bound to pfm::Mutex. Built on
/// std::condition_variable_any so the unlock/relock around a wait goes
/// through Mutex::unlock/lock — lockdep's held stack stays exact while the
/// thread sleeps.
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `lock` and blocks; the lock is re-held on return.
  /// Use with an explicit `while (!predicate)` loop.
  void wait(MutexLock& lock) { cv_.wait(lock.mu_); }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.mu_, d);
  }

  template <class Clock, class Dur>
  std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Dur>& tp) {
    return cv_.wait_until(lock.mu_, tp);
  }

 private:
  std::condition_variable_any cv_;  // pfm-lint: allow(raw-mutex)
};

}  // namespace pfm
