// Runtime lock-order tracking ("lockdep") for debug builds — the dynamic
// half of the concurrency-correctness pass (DESIGN.md "Concurrency &
// analysis"). TSan finds data races but not lock-order inversions that never
// actually deadlock during the run; lockdep records the acquisition graph as
// it happens and fails fast on the first cycle.
//
// Every pfm::Mutex (util/mutex.h) belongs to a *lock class*, interned by the
// name given at construction. On each acquisition the tracker:
//
//   1. pushes the class on a thread-local held stack,
//   2. records an edge (held class -> acquired class) in a global graph,
//   3. PFM_CHECK-fails if the new edge closes a cycle, reporting BOTH
//      acquisition stacks: the current thread's held stack and the held
//      stack snapshotted when the reverse path was first recorded.
//
// Blocking primitives that must never be entered with a lock held
// (Channel::send/receive/receive_for, ThreadPool::parallel_for) call
// PFM_LOCKDEP_ASSERT_UNLOCKED at entry: blocking on a channel while holding
// a pfm::Mutex stalls every thread that needs that lock for an unbounded
// time and is a deadlock when the lock-holder is what drains the channel
// (the NodeLoop::stop regression in tests/lockdep_test.cpp).
//
// Cost when PFM_LOCKDEP=OFF: zero — the hooks compile away. When ON
// (default in Debug builds), the common path (no other lock held, or edge
// already seen by this thread) touches only thread-local state.
#pragma once

#include <atomic>
#include <cstddef>

#include "util/check.h"

#if defined(PFM_LOCKDEP_ENABLED) && PFM_LOCKDEP_ENABLED
#define PFM_LOCKDEP_ON 1
#else
#define PFM_LOCKDEP_ON 0
#endif

namespace pfm::lockdep {

/// True when the lockdep hooks are compiled in (CMake -DPFM_LOCKDEP=ON,
/// default in Debug builds). Tests branch on this like kDcheckEnabled.
inline constexpr bool kLockdepEnabled = PFM_LOCKDEP_ON == 1;

#if PFM_LOCKDEP_ON

/// Interned lock class; one per distinct Mutex name. Distinct instances
/// that share a name share ordering constraints, so two same-class locks
/// held together are reported as an unordered pair — give nestable locks
/// distinct names.
struct LockClass;

/// Returns the interned class for `name` (nullptr -> "pfm::Mutex").
const LockClass* intern_class(const char* name);

/// Order check before a (possibly blocking) acquisition: verifies that no
/// held->c edge closes a cycle and records the new edges. Throws
/// ContractViolation (via PFM_CHECK) on an inversion.
void note_acquire(const LockClass* c);

/// Records c as held by this thread (after the underlying lock succeeded).
void note_held(const LockClass* c);

/// Removes the most recent occurrence of c from this thread's held stack.
void note_release(const LockClass* c);

/// PFM_CHECK-fails when this thread holds any pfm::Mutex: `what` names the
/// blocking operation about to be entered.
void check_no_locks_held(const char* what);

/// Number of pfm::Mutexes this thread currently holds (test aid).
std::size_t held_count();

/// Clears the global acquisition graph and invalidates per-thread edge
/// caches so test cases start from a clean slate. The calling thread must
/// hold no pfm::Mutex.
void reset_for_test();

#endif  // PFM_LOCKDEP_ON

}  // namespace pfm::lockdep

#if PFM_LOCKDEP_ON
#define PFM_LOCKDEP_ASSERT_UNLOCKED(what) \
  ::pfm::lockdep::check_no_locks_held(what)
#else
#define PFM_LOCKDEP_ASSERT_UNLOCKED(what) ((void)0)
#endif

namespace pfm {

/// Debug-build concurrency canary for structures that are documented as
/// externally synchronized or single-threaded by convention (LruCache, the
/// Clusterfile client, MetadataManager). Each mutating entry point opens an
/// AccessCanary::Scope; two overlapping scopes mean two threads are inside
/// the structure at once — a violated synchronization contract that would
/// otherwise surface only as a heisenbug. Compiles to nothing when lockdep
/// is off.
class AccessCanary {
 public:
  explicit AccessCanary(const char* name) { (void)name; init(name); }

  class Scope {
   public:
    explicit Scope([[maybe_unused]] AccessCanary& canary) {
#if PFM_LOCKDEP_ON
      canary_ = &canary;
      const int prev = canary.depth_.fetch_add(1, std::memory_order_acq_rel);
      PFM_CHECK(prev == 0, "concurrent unsynchronized access to ",
                canary.name_,
                " (documented single-threaded / externally locked)");
#endif
    }
    ~Scope() {
#if PFM_LOCKDEP_ON
      canary_->depth_.fetch_sub(1, std::memory_order_acq_rel);
#endif
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
#if PFM_LOCKDEP_ON
    AccessCanary* canary_ = nullptr;
#endif
  };

 private:
  void init([[maybe_unused]] const char* name) {
#if PFM_LOCKDEP_ON
    name_ = name;
#endif
  }
#if PFM_LOCKDEP_ON
  std::atomic<int> depth_{0};
  const char* name_ = "structure";
#endif
};

}  // namespace pfm
