#include "file_model/file.h"

#include <cstring>
#include <stdexcept>

namespace pfm {

FileView::FileView(FallsSet falls, std::int64_t pattern_size,
                   std::int64_t displacement)
    : index_(std::move(falls), pattern_size),
      pattern_size_(pattern_size),
      displacement_(displacement) {
  if (displacement_ < 0) throw std::invalid_argument("FileView: bad displacement");
}

ElementRef FileView::ref() const {
  return ElementRef{&index_.falls(), displacement_, pattern_size_};
}

PatternElement FileView::element() const {
  return PatternElement{index_.falls(), pattern_size_, displacement_};
}

std::int64_t FileView::size_for_file(std::int64_t file_size) const {
  if (file_size <= displacement_) return 0;
  // Member bytes of the tiled pattern in [0, file_size - displacement).
  return index_.count_in(0, file_size - displacement_ - 1);
}

ParallelFile::ParallelFile(PartitioningPattern physical, std::int64_t file_size)
    : physical_(std::move(physical)), file_size_(file_size) {
  if (file_size_ < 0) throw std::invalid_argument("ParallelFile: negative size");
}

std::int64_t ParallelFile::subfile_bytes(std::size_t i) const {
  return physical_.element_bytes(i, file_size_);
}

std::vector<Buffer> ParallelFile::split(std::span<const std::byte> image) const {
  if (static_cast<std::int64_t>(image.size()) != file_size_)
    throw std::invalid_argument("ParallelFile::split: image size mismatch");
  std::vector<Buffer> out(subfile_count());
  const std::int64_t d = physical_.displacement();
  if (file_size_ <= d) return out;
  const std::span<const std::byte> data = image.subspan(static_cast<std::size_t>(d));
  for (std::size_t i = 0; i < subfile_count(); ++i) {
    const IndexSet idx(physical_.element(i), physical_.size());
    out[i].resize(static_cast<std::size_t>(subfile_bytes(i)));
    gather(out[i], data, 0, static_cast<std::int64_t>(data.size()) - 1, idx);
  }
  return out;
}

Buffer ParallelFile::join(const std::vector<Buffer>& subfiles) const {
  if (subfiles.size() != subfile_count())
    throw std::invalid_argument("ParallelFile::join: subfile count mismatch");
  Buffer image(static_cast<std::size_t>(file_size_));
  const std::int64_t d = physical_.displacement();
  if (file_size_ <= d) return image;
  const std::span<std::byte> data =
      std::span<std::byte>(image).subspan(static_cast<std::size_t>(d));
  for (std::size_t i = 0; i < subfile_count(); ++i) {
    if (static_cast<std::int64_t>(subfiles[i].size()) != subfile_bytes(i))
      throw std::invalid_argument("ParallelFile::join: subfile size mismatch");
    const IndexSet idx(physical_.element(i), physical_.size());
    scatter(data, subfiles[i], 0, static_cast<std::int64_t>(data.size()) - 1, idx);
  }
  return image;
}

FileView ParallelFile::view(FallsSet falls, std::int64_t view_pattern_size) const {
  return FileView(std::move(falls), view_pattern_size, physical_.displacement());
}

}  // namespace pfm
