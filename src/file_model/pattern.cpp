#include "file_model/pattern.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "falls/set_ops.h"
#include "util/check.h"

namespace pfm {

PartitioningPattern::PartitioningPattern(std::vector<FallsSet> elements,
                                         std::int64_t displacement)
    : elements_(std::move(elements)), displacement_(displacement) {
  if (displacement_ < 0)
    throw std::invalid_argument("PartitioningPattern: negative displacement");
  if (elements_.empty())
    throw std::invalid_argument("PartitioningPattern: no elements");
  size_ = 0;
  for (const FallsSet& e : elements_) {
    validate_falls_set(e);
    size_ += set_size(e);
  }
  if (size_ == 0) throw std::invalid_argument("PartitioningPattern: size 0");

  // Tiling check: the element runs must cover [0, size_) exactly once.
  // Merge all runs of all elements and verify they abut from 0 to size_.
  std::vector<LineSegment> runs;
  for (const FallsSet& e : elements_) {
    const auto r = set_runs(e);
    runs.insert(runs.end(), r.begin(), r.end());
  }
  std::sort(runs.begin(), runs.end(),
            [](const LineSegment& a, const LineSegment& b) { return a.l < b.l; });
  std::int64_t cursor = 0;
  for (const LineSegment& run : runs) {
    if (run.l != cursor) {
      std::ostringstream os;
      os << "PartitioningPattern: " << (run.l < cursor ? "overlap" : "gap")
         << " at byte " << std::min(run.l, cursor);
      throw std::invalid_argument(os.str());
    }
    cursor = run.r + 1;
  }
  if (cursor != size_)
    throw std::invalid_argument("PartitioningPattern: pattern not contiguous");
}

ElementRef PartitioningPattern::element_ref(std::size_t i) const {
  return ElementRef{&elements_.at(i), displacement_, size_};
}

PatternElement PartitioningPattern::pattern_element(std::size_t i) const {
  return PatternElement{elements_.at(i), size_, displacement_};
}

std::size_t PartitioningPattern::element_of(std::int64_t file_off) const {
  if (file_off < displacement_)
    throw std::domain_error("element_of: offset before displacement");
  const std::int64_t phase = (file_off - displacement_) % size_;
  for (std::size_t i = 0; i < elements_.size(); ++i)
    if (set_contains(elements_[i], phase)) return i;
  // The constructor proved the elements tile [0, size_) exactly.
  PFM_UNREACHABLE("element_of: no element owns phase ", phase);
}

std::int64_t PartitioningPattern::map_to_element(std::size_t i,
                                                 std::int64_t file_off,
                                                 Round round) const {
  return ::pfm::map_to_element(element_ref(i), file_off, round);
}

std::int64_t PartitioningPattern::map_to_file(std::size_t i,
                                              std::int64_t elem_off) const {
  return ::pfm::map_to_file(element_ref(i), elem_off);
}

std::int64_t PartitioningPattern::element_bytes(std::size_t i,
                                                std::int64_t file_size) const {
  if (file_size <= displacement_) return 0;
  const std::int64_t span = file_size - displacement_;
  const std::int64_t periods = span / size_;
  const std::int64_t tail = span % size_;
  const FallsSet& e = elements_.at(i);
  std::int64_t bytes = periods * set_size(e);
  if (tail > 0) bytes += set_rank(e, tail);
  return bytes;
}

PartitioningPattern make_pattern(std::vector<FallsSet> elements,
                                 std::int64_t displacement) {
  return PartitioningPattern(std::move(elements), displacement);
}

}  // namespace pfm
