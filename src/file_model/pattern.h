// The parallel file model (paper section 5): a file is a linear sequence of
// bytes described by a displacement and a partitioning pattern. The pattern
// is the union of m sets of nested FALLS, each defining one partition
// element (a subfile when the partition is physical, a view element when it
// is logical); it must tile a contiguous region [0, SIZE(P)) without
// overlap, and is applied repeatedly through the file's linear space
// starting at the displacement.
#pragma once

#include <cstdint>
#include <vector>

#include "falls/falls.h"
#include "intersect/intersect.h"
#include "mapping/map.h"

namespace pfm {

class PartitioningPattern {
 public:
  /// Builds and validates a pattern. Throws std::invalid_argument unless the
  /// element sets tile [0, sum of sizes) exactly (contiguous, non-
  /// overlapping — the paper's structural requirements).
  PartitioningPattern(std::vector<FallsSet> elements, std::int64_t displacement);

  std::int64_t displacement() const { return displacement_; }
  /// SIZE(P): the pattern period (sum of all element sizes).
  std::int64_t size() const { return size_; }
  std::size_t element_count() const { return elements_.size(); }
  const FallsSet& element(std::size_t i) const { return elements_.at(i); }
  const std::vector<FallsSet>& elements() const { return elements_; }

  /// The element's context for the mapping functions of mapping/map.h.
  ElementRef element_ref(std::size_t i) const;
  /// The element's context for the intersection algorithm.
  PatternElement pattern_element(std::size_t i) const;

  /// Which element the file byte at `file_off` belongs to (file_off must be
  /// >= displacement). Every byte belongs to exactly one element.
  std::size_t element_of(std::int64_t file_off) const;

  /// MAP / MAP^-1 convenience wrappers for element i.
  std::int64_t map_to_element(std::size_t i, std::int64_t file_off,
                              Round round = Round::kExact) const;
  std::int64_t map_to_file(std::size_t i, std::int64_t elem_off) const;

  /// Bytes element i holds of a file of `file_size` bytes (counting the
  /// partial final period).
  std::int64_t element_bytes(std::size_t i, std::int64_t file_size) const;

 private:
  std::vector<FallsSet> elements_;
  std::int64_t displacement_ = 0;
  std::int64_t size_ = 0;
};

/// Convenience: pattern from per-element FALLS sets produced by the layout
/// builders (partition2d_all / layout_all), displacement 0 by default.
PartitioningPattern make_pattern(std::vector<FallsSet> elements,
                                 std::int64_t displacement = 0);

}  // namespace pfm
