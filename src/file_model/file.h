// ParallelFile: a linear byte file plus its physical partitioning pattern
// (paper section 5). Subfiles and views are both partition elements of such
// patterns; this class offers the file-level operations the examples and
// tests use directly: materializing subfiles from a flat image, assembling
// the image back, and setting logical views.
#pragma once

#include <cstdint>
#include <vector>

#include "file_model/pattern.h"
#include "redist/gather_scatter.h"
#include "util/buffer.h"

namespace pfm {

/// A logical view on a file: one element of a (logical) partitioning
/// pattern, with precomputed index runs for fast contiguous access.
class FileView {
 public:
  FileView(FallsSet falls, std::int64_t pattern_size, std::int64_t displacement);

  const FallsSet& falls() const { return index_.falls(); }
  std::int64_t pattern_size() const { return pattern_size_; }
  std::int64_t displacement() const { return displacement_; }
  const IndexSet& index() const { return index_; }

  ElementRef ref() const;
  PatternElement element() const;

  /// Bytes visible through the view for a file of `file_size` bytes.
  std::int64_t size_for_file(std::int64_t file_size) const;

 private:
  IndexSet index_;
  std::int64_t pattern_size_ = 0;
  std::int64_t displacement_ = 0;
};

class ParallelFile {
 public:
  ParallelFile(PartitioningPattern physical, std::int64_t file_size);

  const PartitioningPattern& physical() const { return physical_; }
  std::int64_t size() const { return file_size_; }
  std::size_t subfile_count() const { return physical_.element_count(); }
  /// Bytes subfile i stores for this file.
  std::int64_t subfile_bytes(std::size_t i) const;

  /// Splits a flat file image into per-subfile images (physical layout).
  /// image.size() must equal size(); bytes before the displacement belong
  /// to no subfile and are ignored.
  std::vector<Buffer> split(std::span<const std::byte> image) const;

  /// Assembles the flat image back from per-subfile images; the inverse of
  /// split (bytes before the displacement are zero-filled).
  Buffer join(const std::vector<Buffer>& subfiles) const;

  /// A view described by one element pattern (its own pattern size and the
  /// file's displacement).
  FileView view(FallsSet falls, std::int64_t view_pattern_size) const;

 private:
  PartitioningPattern physical_;
  std::int64_t file_size_ = 0;
};

}  // namespace pfm
